"""Profiling harness for the simulator hot path (``repro profile``).

Runs one simulation under :mod:`cProfile` and attributes exclusive time
to simulator subsystems (``cpu``, ``mem``, ``system``, ``trace``, ...),
reporting per-subsystem seconds, share, and microseconds per simulated
instruction plus overall simulated-instructions-per-second throughput.
This is the measurement backing the arena/fork-server optimisation work:
it shows where a cycle of host time goes and catches hot-path
regressions before they reach the benchmarks.

``--compare-arena`` additionally materializes a trace arena for the same
job, replays it, and reports the replay speedup and a byte-identity
check against the generator path -- a quick local version of the
cross-check the benchmark and CI smoke enforce.

``--backend fast|reference`` selects the execution backend to profile
(see ARCHITECTURE.md "Execution backends"), and ``--compare-backends``
profiles the same job under both, printing a per-subsystem speedup
table plus a byte-identity check; the CLI exits nonzero if the
backends ever disagree.
"""

from __future__ import annotations

import cProfile
import contextlib
import json
import pstats
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.experiment import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
from repro.params import default_system
from repro.run.jobs import JobSpec, WorkloadSpec

#: Top-level ``repro`` subpackages reported as subsystems; anything
#: else inside the package is charged to its module name, and stdlib /
#: builtin frames to ``python``.
_PACKAGE = "repro"


# ------------------------------------------------------------ phase costs

#: Per-phase execution accounting collected by :func:`phase` and
#: rendered at the end of ``repro report``: for each report phase, the
#: wall time and how much of it went to simulation, arena generation
#: and checkpoint writes (watchdog polling is part of the simulate
#: column -- it runs inside the cycle loop).
_phase_log: List[Dict[str, Any]] = []


def reset_phase_log() -> None:
    _phase_log.clear()


@contextlib.contextmanager
def phase(name: str):
    """Time one report phase, attributing runner costs by delta.

    Samples the executor's process-wide totals before and after, so the
    phase row shows exactly what *this* phase spent on simulation,
    trace-arena generation and checkpoint writes, and how many of its
    jobs were cache hits or checkpoint resumes.
    """
    from repro.run.executor import run_totals
    before = run_totals()
    started = time.perf_counter()  # repro-lint: disable=R002
    try:
        yield
    finally:
        elapsed = time.perf_counter() - started  # repro-lint: disable=R002
        after = run_totals()
        delta = {key: after[key] - before[key] for key in after}
        _phase_log.append({
            "phase": name,
            "wall_s": elapsed,
            "sim_s": max(0.0, delta["wall_s"] - delta["trace_gen_s"]
                         - delta["checkpoint_s"]),
            "trace_gen_s": delta["trace_gen_s"],
            "checkpoint_s": delta["checkpoint_s"],
            "jobs": int(delta["jobs"]),
            "cache_hits": int(delta["cache_hits"]),
            "resumed": int(delta["resumed"]),
            "failed": int(delta["failed"]),
        })


def format_phase_log() -> str:
    """The per-phase cost table printed at the end of ``repro report``."""
    if not _phase_log:
        return "per-phase cost: nothing recorded"
    lines = ["per-phase cost (simulate / arena gen / checkpoints):"]
    for row in _phase_log:
        notes = []
        if row["cache_hits"]:
            notes.append(f"{row['cache_hits']} cached")
        if row["resumed"]:
            notes.append(f"{row['resumed']} resumed")
        if row["failed"]:
            notes.append(f"{row['failed']} FAILED")
        suffix = f"  ({', '.join(notes)})" if notes else ""
        lines.append(
            f"  {row['phase']:<16s} {row['wall_s']:>7.2f}s total: "
            f"{row['sim_s']:>7.2f}s sim, {row['trace_gen_s']:>5.2f}s "
            f"arenas, {row['checkpoint_s']:>5.2f}s ckpt, "
            f"{row['jobs']:>3d} job(s){suffix}")
    total = {key: sum(row[key] for row in _phase_log)
             for key in ("wall_s", "sim_s", "trace_gen_s",
                         "checkpoint_s")}
    overhead = total["checkpoint_s"] / total["sim_s"] \
        if total["sim_s"] > 0 else 0.0
    lines.append(
        f"  {'TOTAL':<16s} {total['wall_s']:>7.2f}s total: "
        f"{total['sim_s']:>7.2f}s sim, {total['trace_gen_s']:>5.2f}s "
        f"arenas, {total['checkpoint_s']:>5.2f}s ckpt "
        f"({overhead:.1%} checkpoint overhead)")
    return "\n".join(lines)


def _subsystem_of(filename: str) -> str:
    if filename.startswith("<") or filename.startswith("~"):
        return "python"
    parts = Path(filename).parts
    if _PACKAGE not in parts:
        return "python"
    at = len(parts) - 1 - parts[::-1].index(_PACKAGE)
    if at + 1 >= len(parts):
        return _PACKAGE
    component = parts[at + 1]
    return component[:-3] if component.endswith(".py") else component


def _profile_once(spec: JobSpec):
    """cProfile one job; (result, wall_s, subsystem seconds, functions)."""
    profiler = cProfile.Profile()
    started = time.perf_counter()  # repro-lint: disable=R002
    profiler.enable()
    result = spec.run()
    profiler.disable()
    wall_s = time.perf_counter() - started  # repro-lint: disable=R002

    stats = pstats.Stats(profiler)
    by_subsystem: Dict[str, float] = {}
    functions = []
    for (filename, lineno, funcname), \
            (_cc, ncalls, tottime, _cum, _callers) in stats.stats.items():
        by_subsystem[_subsystem_of(filename)] = \
            by_subsystem.get(_subsystem_of(filename), 0.0) + tottime
        functions.append({
            "function": f"{Path(filename).name}:{lineno}({funcname})",
            "seconds": tottime,
            "calls": ncalls,
        })
    functions.sort(key=lambda f: f["seconds"], reverse=True)
    return result, wall_s, by_subsystem, functions


def profile_run(kind: str = "oltp",
                instructions: int = DEFAULT_INSTRUCTIONS,
                warmup: int = DEFAULT_WARMUP,
                seed: int = 0,
                top: int = 10,
                compare_arena: bool = False,
                trace_dir: Optional[str] = None,
                backend: str = "reference",
                compare_backends: bool = False) -> Dict[str, Any]:
    """Profile one simulation; return a JSON-friendly report dict."""
    spec = JobSpec(default_system().replace(backend=backend),
                   WorkloadSpec(kind),
                   instructions=instructions, warmup=warmup, seed=seed)
    total_instr = instructions + warmup

    result, wall_s, by_subsystem, functions = _profile_once(spec)
    profiled_s = sum(by_subsystem.values()) or 1e-9

    subsystems = [
        {
            "name": name,
            "seconds": round(seconds, 4),
            "share": round(seconds / profiled_s, 4),
            "us_per_instr": round(seconds / total_instr * 1e6, 3),
        }
        for name, seconds in sorted(by_subsystem.items(),
                                    key=lambda kv: kv[1], reverse=True)
    ]
    report: Dict[str, Any] = {
        "workload": kind,
        "backend": backend,
        "instructions": instructions,
        "warmup": warmup,
        "seed": seed,
        "cycles": result.cycles,
        "wall_s": round(wall_s, 4),
        "instr_per_s": round(total_instr / wall_s) if wall_s else 0,
        "subsystems": subsystems,
        "top_functions": [
            {"function": f["function"],
             "seconds": round(f["seconds"], 4),
             "calls": f["calls"]}
            for f in functions[:max(0, top)]
        ],
    }
    if compare_arena:
        report["arena"] = _compare_arena(spec, result, trace_dir)
    if compare_backends:
        report["backends"] = _compare_backends(spec)
    return report


#: Backends profiled by ``--compare-backends``, reference first (it is
#: the baseline every speedup is computed against).
_BACKENDS = ("reference", "fast", "batch")


def _compare_backends(spec: JobSpec) -> Dict[str, Any]:
    """Profile the job under every backend; per-subsystem speedups and a
    byte-identity verdict (the CLI exits nonzero on divergence)."""
    import dataclasses

    runs: Dict[str, Any] = {}
    for backend in _BACKENDS:
        bspec = dataclasses.replace(
            spec, params=spec.params.replace(backend=backend))
        result, wall_s, by_subsystem, _functions = _profile_once(bspec)
        runs[backend] = (result.to_dict(), wall_s, by_subsystem)

    ref_dict, ref_wall, ref_sub = runs["reference"]
    names = sorted(
        {name for _d, _w, sub in runs.values() for name in sub},
        key=lambda n: ref_sub.get(n, 0.0), reverse=True)
    subsystems = []
    for name in names:
        ref_s = ref_sub.get(name, 0.0)
        row: Dict[str, Any] = {"name": name,
                               "reference_s": round(ref_s, 4)}
        for backend in _BACKENDS[1:]:
            b_s = runs[backend][2].get(name, 0.0)
            row[f"{backend}_s"] = round(b_s, 4)
            row[f"{backend}_speedup"] = \
                round(ref_s / b_s, 2) if b_s > 1e-9 else None
        # Historical aliases: fast was the first alternative backend and
        # downstream tooling reads these keys.
        row["speedup"] = row["fast_speedup"]
        subsystems.append(row)
    report: Dict[str, Any] = {
        "reference_wall_s": round(ref_wall, 4),
        "subsystems": subsystems,
    }
    for backend in _BACKENDS[1:]:
        b_dict, b_wall, _sub = runs[backend]
        report[f"{backend}_wall_s"] = round(b_wall, 4)
        report[f"{backend}_speedup"] = \
            round(ref_wall / b_wall, 2) if b_wall else 0.0
        report[f"{backend}_identical"] = b_dict == ref_dict
    report["speedup"] = report["fast_speedup"]
    report["identical"] = all(
        report[f"{backend}_identical"] for backend in _BACKENDS[1:])
    return report


def _compare_arena(spec: JobSpec, generator_result,
                   trace_dir: Optional[str]) -> Dict[str, Any]:
    """Materialize + replay the job's arena; time and cross-check it."""
    import tempfile

    from repro.trace import arena as trace_arena

    def measure(workload=None):
        started = time.perf_counter()  # repro-lint: disable=R002
        result = spec.run(workload=workload)
        return result, time.perf_counter() - started  # repro-lint: disable=R002

    with tempfile.TemporaryDirectory() as scratch:
        directory = Path(trace_dir) if trace_dir else Path(scratch)
        recorder = trace_arena.ArenaRecorder(
            spec.workload.build(), spec.params.n_nodes, spec.seed,
            spec.workload.to_dict(), spec.instructions + spec.warmup)
        _recorded, generator_s = measure(workload=recorder.workload())
        path = directory / f"{recorder.key()}.arena"
        wrote = recorder.write(path)
        handle = trace_arena.load_cached(path) if wrote else None
        if handle is None:
            return {"materialized": False}
        replayed, replay_s = measure(workload=handle)
        comparison = {
            "materialized": True,
            "generator_s": round(generator_s, 4),
            "replay_s": round(replay_s, 4),
            "replay_speedup": round(generator_s / replay_s, 2)
            if replay_s else 0.0,
            "identical": replayed.to_dict() == generator_result.to_dict(),
            "arena_bytes": path.stat().st_size if path.exists() else 0,
        }
        trace_arena.forget(path)
        return comparison


def format_report(report: Dict[str, Any]) -> str:
    lines = [
        f"workload {report['workload']}  "
        f"backend {report.get('backend', 'reference')}  "
        f"instr {report['instructions']:,} (+{report['warmup']:,} warmup)"
        f"  seed {report['seed']}",
        f"cycles {report['cycles']:,}  wall {report['wall_s']:.2f}s  "
        f"{report['instr_per_s']:,} simulated instr/s",
        "",
        "per-subsystem exclusive time:",
    ]
    for sub in report["subsystems"]:
        if sub["share"] < 0.001:
            continue
        lines.append(f"  {sub['name']:<10s} {sub['seconds']:>8.3f}s  "
                     f"{sub['share']:>6.1%}  "
                     f"{sub['us_per_instr']:>8.3f} us/instr")
    if report.get("top_functions"):
        lines.append("")
        lines.append("hottest functions (exclusive):")
        for fn in report["top_functions"]:
            lines.append(f"  {fn['seconds']:>8.3f}s  {fn['calls']:>10,}x  "
                         f"{fn['function']}")
    arena = report.get("arena")
    if arena is not None:
        lines.append("")
        if not arena.get("materialized"):
            lines.append("arena cross-check: not materialized "
                         "(stream outside format envelope?)")
        else:
            verdict = "identical" if arena["identical"] else "DIVERGED"
            lines.append(
                f"arena cross-check: generator {arena['generator_s']:.2f}s"
                f" vs replay {arena['replay_s']:.2f}s "
                f"({arena['replay_speedup']:.2f}x), results {verdict}, "
                f"{arena['arena_bytes']:,} bytes on disk")
    backends = report.get("backends")
    if backends is not None:
        verdict = "identical" if backends["identical"] else "DIVERGED"
        lines.append("")
        lines.append(
            f"backend cross-check: reference "
            f"{backends['reference_wall_s']:.2f}s vs fast "
            f"{backends['fast_wall_s']:.2f}s "
            f"({backends['fast_speedup']:.2f}x) vs batch "
            f"{backends['batch_wall_s']:.2f}s "
            f"({backends['batch_speedup']:.2f}x), results {verdict}")
        lines.append("  per-subsystem exclusive time "
                     "(reference -> fast -> batch):")
        for sub in backends["subsystems"]:
            if sub["reference_s"] < 0.001 and sub["fast_s"] < 0.001 \
                    and sub["batch_s"] < 0.001:
                continue
            fast_x = "   n/a" if sub["fast_speedup"] is None \
                else f"{sub['fast_speedup']:>5.2f}x"
            batch_x = "   n/a" if sub["batch_speedup"] is None \
                else f"{sub['batch_speedup']:>5.2f}x"
            lines.append(f"  {sub['name']:<10s} "
                         f"{sub['reference_s']:>8.3f}s -> "
                         f"{sub['fast_s']:>8.3f}s {fast_x} -> "
                         f"{sub['batch_s']:>8.3f}s {batch_x}")
    return "\n".join(lines)
