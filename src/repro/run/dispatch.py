"""Pluggable execution strategies behind :func:`run_many`.

A :class:`Dispatcher` takes the sweep's *pending* jobs (cache misses
without an outcome yet) and either finishes them (``run`` returns
``True``) or declines/aborts (``False``), in which case the next
dispatcher in the chain re-runs exactly the jobs still missing an
outcome.  The chain always ends with :class:`SerialDispatcher`, which
cannot fail, so a sweep degrades -- fabric to local pool to in-process
serial -- without ever losing completed outcomes: results live in the
shared ``outcomes`` list and the manifest, not in the dispatcher.

The three built-in strategies wrap the existing executors:

* :class:`SerialDispatcher` -- in-process, deterministic baseline;
* :class:`PoolDispatcher` -- the persistent fork-server pool
  (:func:`repro.run.executor._run_pool`);
* ``FabricDispatcher`` (:mod:`repro.run.fabric.coordinator`) -- the
  multi-host coordinator/worker fabric, imported lazily so the socket
  machinery never loads for purely local sweeps.

``resolve_chain`` maps ``run_many(dispatch=...)`` -- ``"local"``,
``"fabric"``, a :class:`Dispatcher` instance, or an explicit list --
to the concrete chain.
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

#: Environment default for the fabric worker list (comma-separated
#: specs, e.g. ``spawn:3`` or ``ssh:db1,ssh:db2`` or ``wait:2``).
WORKERS_ENV = "REPRO_WORKERS"

#: Environment default for the dispatch mode (``local`` / ``fabric``).
DISPATCH_ENV = "REPRO_DISPATCH"

_DISPATCH_MODES = ("local", "fabric")


def default_workers() -> Tuple[str, ...]:
    """Worker specs from ``REPRO_WORKERS`` (default: none)."""
    raw = os.environ.get(WORKERS_ENV, "")
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def default_dispatch() -> str:
    """Dispatch mode from ``REPRO_DISPATCH``; ``fabric`` is implied
    when ``REPRO_WORKERS`` names workers and no mode is given."""
    mode = os.environ.get(DISPATCH_ENV, "").strip().lower()
    if mode in _DISPATCH_MODES:
        return mode
    return "fabric" if default_workers() else "local"


@dataclass
class DispatchContext:
    """Everything a dispatcher needs to execute pending jobs.

    ``outcomes`` is the sweep-wide result list (indexed by original
    spec position) that dispatchers fill in place; a fallback
    dispatcher re-runs only the indices still ``None``.  ``workloads``
    maps index to an in-process arena handle (serial path);
    ``arena_paths`` maps index to the arena file path (worker
    processes map it themselves).
    """

    cache: Optional[Any] = None
    outcomes: List[Optional[Any]] = field(default_factory=list)
    policy: Any = None
    manifest: Optional[Any] = None
    workloads: Dict[int, Any] = field(default_factory=dict)
    arena_paths: Dict[int, str] = field(default_factory=dict)
    checkpoint_every: int = 0
    jobs: int = 1


class Dispatcher(abc.ABC):
    """One execution strategy for a batch of pending sweep jobs."""

    #: Short strategy name reported in :class:`RunReport.dispatch`.
    name: str = "?"

    @abc.abstractmethod
    def run(self, pending: Sequence[Tuple[int, Any]],
            ctx: DispatchContext) -> bool:
        """Execute ``pending`` (``(index, spec)`` pairs), filling
        ``ctx.outcomes``.  Return ``True`` when this strategy is done
        with the batch (individual job failures included -- those are
        outcomes, not dispatcher failures); ``False`` to hand the
        still-outcome-less jobs to the next strategy in the chain."""


class SerialDispatcher(Dispatcher):
    """In-process execution; the chain terminator that cannot decline."""

    name = "serial"

    def run(self, pending: Sequence[Tuple[int, Any]],
            ctx: DispatchContext) -> bool:
        from repro.run.executor import _run_serial
        _run_serial(pending, ctx.cache, ctx.outcomes, ctx.policy,
                    ctx.manifest, ctx.workloads,
                    checkpoint_every=ctx.checkpoint_every)
        return True


class PoolDispatcher(Dispatcher):
    """The persistent local fork-server pool."""

    name = "pool"

    def run(self, pending: Sequence[Tuple[int, Any]],
            ctx: DispatchContext) -> bool:
        if ctx.jobs < 2 or len(pending) < 2:
            return False
        from repro.run.executor import _run_pool
        return _run_pool(pending, min(ctx.jobs, len(pending)),
                         ctx.cache, ctx.outcomes, ctx.policy,
                         ctx.manifest, ctx.arena_paths,
                         checkpoint_every=ctx.checkpoint_every)


DispatchSpec = Union[None, str, Dispatcher, Sequence[Dispatcher]]


def resolve_chain(dispatch: DispatchSpec, jobs: int, n_pending: int,
                  workers: Sequence[str] = ()) -> List[Dispatcher]:
    """Concrete dispatcher chain for one ``run_many`` call.

    ``dispatch`` may be ``None``/``"local"`` (pool when it can pay off,
    then serial -- the historical behaviour), ``"fabric"`` (fabric,
    then pool, then serial), a ready :class:`Dispatcher` (it gets a
    serial fallback appended), or an explicit sequence (used verbatim;
    the caller owns termination).
    """
    if isinstance(dispatch, Dispatcher):
        return [dispatch, SerialDispatcher()]
    if isinstance(dispatch, (list, tuple)):
        return list(dispatch) or [SerialDispatcher()]
    mode = (dispatch or "local").strip().lower()
    if mode not in _DISPATCH_MODES:
        raise ValueError(
            f"dispatch must be one of {_DISPATCH_MODES}, a Dispatcher, "
            f"or a sequence of them; got {dispatch!r}")
    chain: List[Dispatcher] = []
    if mode == "fabric":
        from repro.run.fabric.coordinator import (
            FabricConfig,
            FabricDispatcher,
        )
        chain.append(FabricDispatcher(
            FabricConfig(workers=tuple(workers))))
    if jobs > 1 and n_pending > 1:
        chain.append(PoolDispatcher())
    chain.append(SerialDispatcher())
    return chain
