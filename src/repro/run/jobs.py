"""Picklable job descriptions for the experiment runner.

Trace generators hold closures, RNG state and the shared
:class:`~repro.trace.database.DatabaseLayout`, so a live
:class:`~repro.core.workloads.Workload` cannot cross a process boundary.
A :class:`JobSpec` instead carries everything needed to *rebuild* the
workload inside a worker -- the system parameters, a declarative
:class:`WorkloadSpec`, and the run sizes/seed -- and exposes a stable
content fingerprint used as the result-cache key.

:data:`MODEL_VERSION` is part of every fingerprint.  Bump it whenever
simulator *semantics* change (timing model, protocol behaviour, workload
generation), so stale cached results are never reused across
behaviour-changing PRs.  Pure refactors and speedups that keep results
bit-identical must not bump it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.core.experiment import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_WARMUP,
    SimulationResult,
    run_simulation,
)
from repro.core.workloads import (
    Workload,
    dss_workload,
    oltp_workload,
    tpcc_workload,
)
from repro.params import DEFAULT_SCALE, SystemParams
from repro.params_io import params_from_dict, params_to_dict
from repro.trace.database import MigratoryHints

#: Simulator-semantics version baked into every job fingerprint.
#: 2: exclusive->shared demotions revoke the old owner's write
#:    permission and dirty bits; read prefetches only confer write
#:    permission on an actual exclusive grant.
MODEL_VERSION = 2

#: Workload kinds a spec can rebuild, with their default processes/CPU.
_WORKLOAD_FACTORIES = {
    "oltp": oltp_workload,
    "dss": dss_workload,
    "tpcc": tpcc_workload,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative, picklable description of a workload.

    ``processes_per_cpu=None`` keeps the factory's default (6 for OLTP,
    4 for DSS).  Migratory hints are flattened to plain fields so the
    spec stays hashable and JSON-friendly; ``hints_pcs=None`` means "no
    PC filter" while an empty tuple filters everything out.
    """

    kind: str
    scale: int = DEFAULT_SCALE
    processes_per_cpu: Optional[int] = None
    hints_prefetch: bool = False
    hints_flush: bool = False
    hints_pcs: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in _WORKLOAD_FACTORIES:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; expected one of "
                f"{sorted(_WORKLOAD_FACTORIES)}")

    @classmethod
    def from_factory(cls, factory, **kw) -> Optional["WorkloadSpec"]:
        """Map a known workload factory function to a spec (or ``None``)."""
        for kind, known in _WORKLOAD_FACTORIES.items():
            if factory is known:
                return cls(kind=kind, **kw)
        return None

    @property
    def hints(self) -> Optional[MigratoryHints]:
        if not (self.hints_prefetch or self.hints_flush):
            return None
        pc_filter = set(self.hints_pcs) if self.hints_pcs is not None \
            else None
        return MigratoryHints(prefetch=self.hints_prefetch,
                              flush=self.hints_flush, pc_filter=pc_filter)

    def build(self) -> Workload:
        """Instantiate the live workload (generators, shared layout)."""
        factory = _WORKLOAD_FACTORIES[self.kind]
        kw: Dict[str, Any] = {"scale": self.scale}
        if self.processes_per_cpu is not None:
            kw["processes_per_cpu"] = self.processes_per_cpu
        if self.kind != "dss":
            kw["hints"] = self.hints
        elif self.hints is not None:
            raise ValueError("DSS workload does not take migratory hints")
        return factory(**kw)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "scale": self.scale,
            "processes_per_cpu": self.processes_per_cpu,
            "hints_prefetch": self.hints_prefetch,
            "hints_flush": self.hints_flush,
            "hints_pcs": list(self.hints_pcs)
            if self.hints_pcs is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkloadSpec":
        pcs = data.get("hints_pcs")
        return cls(
            kind=data["kind"],
            scale=int(data.get("scale", DEFAULT_SCALE)),
            processes_per_cpu=data.get("processes_per_cpu"),
            hints_prefetch=bool(data.get("hints_prefetch", False)),
            hints_flush=bool(data.get("hints_flush", False)),
            hints_pcs=tuple(pcs) if pcs is not None else None,
        )

    @classmethod
    def from_hints(cls, kind: str,
                   hints: Optional[MigratoryHints] = None,
                   **kw) -> "WorkloadSpec":
        """Build a spec from a live :class:`MigratoryHints` object."""
        if hints is None:
            return cls(kind=kind, **kw)
        pcs = tuple(sorted(hints.pc_filter)) \
            if hints.pc_filter is not None else None
        return cls(kind=kind, hints_prefetch=hints.prefetch,
                   hints_flush=hints.flush, hints_pcs=pcs, **kw)


@dataclass(frozen=True)
class JobSpec:
    """One `run_simulation` call, described as data.

    Fully picklable and JSON-round-trippable; :meth:`fingerprint` is a
    stable content hash over the canonical JSON encoding plus
    :data:`MODEL_VERSION`, suitable as a cache key.
    """

    params: SystemParams
    workload: WorkloadSpec
    instructions: int = DEFAULT_INSTRUCTIONS
    warmup: int = DEFAULT_WARMUP
    seed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "params": params_to_dict(self.params),
            "workload": self.workload.to_dict(),
            "instructions": self.instructions,
            "warmup": self.warmup,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        return cls(
            params=params_from_dict(data["params"]),
            workload=WorkloadSpec.from_dict(data["workload"]),
            instructions=int(data["instructions"]),
            warmup=int(data["warmup"]),
            seed=int(data["seed"]),
        )

    def fingerprint(self) -> str:
        """Stable content hash of the job (includes the model version)."""
        payload = {"model_version": MODEL_VERSION, "job": self.to_dict()}
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Short human-readable label for manifests and progress output.

        Not a cache key (that is :meth:`fingerprint`); just enough for a
        person scanning ``repro sweep-status`` to recognise the cell:
        workload kind, run sizes, seed, and a fingerprint prefix that
        disambiguates the system configuration.
        """
        return (f"{self.workload.kind} i={self.instructions} "
                f"w={self.warmup} seed={self.seed} "
                f"[{self.fingerprint()[:12]}]")

    def run(self, workload: Optional[Any] = None) -> SimulationResult:
        """Execute the simulation, rebuilding the workload if needed.

        ``workload`` may be a pre-built workload substitute -- typically
        a :class:`~repro.trace.arena.TraceArena` replaying materialized
        streams, or a recording wrapper materializing them.  Any
        :class:`~repro.trace.arena.ArenaError` (shape mismatch, stream
        exhausted mid-run) falls back to rebuilding the generator path,
        which is byte-identical by construction, so callers may hand in
        an arena speculatively.  The arena never enters
        :meth:`fingerprint`: cache keys and results are independent of
        *how* the instruction stream was obtained.
        """
        if workload is not None:
            from repro.trace.arena import ArenaError
            try:
                return run_simulation(self.params, workload,
                                      instructions=self.instructions,
                                      warmup=self.warmup, seed=self.seed)
            except ArenaError:
                pass
        return run_simulation(self.params, self.workload.build(),
                              instructions=self.instructions,
                              warmup=self.warmup, seed=self.seed)
