"""Audited atomic file I/O for every durable runner artifact.

Every artifact the sweep stack persists -- result-cache entries, the
sweep manifest, mid-run checkpoints, trace arenas, triage bundles, and
the gc journal -- used to carry its own copy of the same tmp + rename
dance.  This module is the single implementation: one write primitive
(``mkstemp`` in the target directory, write, flush, fsync, ``os.replace``,
directory fsync), one sha256 framing scheme for binary artifacts, one
quarantine helper for corrupt files, and one orphaned-``*.tmp`` sweeper.

Durability policy is declared per call:

* **best-effort** (the default): a storage failure degrades to a
  structured one-time :class:`DurabilityWarning` per (category, error
  kind) and a ``False`` return -- the artifact is recomputable
  (cache entries, checkpoints, arenas, triage bundles, gc state), so
  the sweep continues.
* **critical** (``critical=True``): the write must land or the caller
  must hear about it; failures raise :class:`CriticalWriteError`.  The
  sweep manifest is the only critical artifact -- it is the attempt
  ledger the durability audit checks outcomes against.

Deterministic disk-fault injection (``REPRO_FAULTS`` -- see
:mod:`repro.run.faults`) lives *inside* the write primitive, so every
durable site in the tree is fault-covered by construction: ``torn``
truncates the stored bytes at a hash-derived offset but lets the rename
complete (the next read must detect and quarantine), ``shortwrite``
writes a prefix then fails with EIO, ``enospc`` fails up front,
``eio`` fails the rename, ``renamecrash`` leaves the temp file behind
and raises :class:`~repro.run.faults.InjectedCrash` like a writer dying
mid-flight, and ``fsyncdrop`` silently skips the fsync.  Faults roll
per (category, op, per-category sequence number) through the plan's
sha256 scheme, so the same plan string injects the same schedule on a
serial re-run.  Critical writes are exempt: their only recovery path is
"stop the sweep", which injection would merely demonstrate by stopping
the test.

Nothing here reads the wall clock except the orphan sweeper's
housekeeping cutoff; no simulated state is ever touched.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.run.faults import (FaultPlan, InjectedCrash, InjectedDiskFault,
                              plan_from_env)

#: The known artifact categories (any string is accepted; these are the
#: six the recovery audit walks).
CATEGORIES = ("cache", "manifest", "checkpoint", "arena", "triage",
              "gcstate")

#: Age (seconds) after which an orphaned ``*.tmp`` file is considered
#: abandoned and swept.  Generous enough that a live concurrent
#: writer's in-flight temp file is never touched.
ORPHAN_TTL = 3600.0

#: Subdirectory name used for quarantined corrupt artifacts.
QUARANTINE_DIR = "quarantine"

#: Format tag for :func:`write_checked_json` payloads.
CHECKED_JSON_FORMAT = 1


class CriticalWriteError(OSError):
    """A critical durable write (the sweep manifest) could not land."""


class FramedReadError(ValueError):
    """A framed or checked artifact failed magic/checksum validation."""


class DurabilityWarning(RuntimeWarning):
    """A best-effort durable write degraded; emitted once per
    (category, error kind)."""


#: Per-category durable-write sequence counters (process-local).  The
#: counter orders fault rolls: write ``seq`` of a category always rolls
#: the same fault for the same plan, so serial replays inject
#: identically.
_SEQ: Dict[str, int] = {}

#: (category, error kind) pairs already warned about.
_WARNED: Set[Tuple[str, str]] = set()


def reset_state() -> None:
    """Clear sequence counters and warn-once state (tests only)."""
    _SEQ.clear()
    _WARNED.clear()


def sequence_numbers() -> Dict[str, int]:
    """Snapshot of the per-category write counters (diagnostics)."""
    return dict(_SEQ)


def _next_seq(category: str) -> int:
    seq = _SEQ.get(category, 0)
    _SEQ[category] = seq + 1
    return seq


def _error_kind(exc: OSError) -> str:
    if exc.errno is not None:
        return errno.errorcode.get(exc.errno, str(exc.errno))
    return type(exc).__name__


def _warn_once(category: str, exc: OSError, stacklevel: int) -> None:
    key = (category, _error_kind(exc))
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(
        f"durable {category} write failed ({_error_kind(exc)}: {exc}); "
        f"artifact is best-effort, continuing -- further {category} "
        f"failures of this kind are not repeated",
        DurabilityWarning, stacklevel=stacklevel)


def _fsync_dir(directory: Path) -> None:
    """Best-effort fsync of a directory after a rename into it."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


_UNSET = object()


def atomic_write_bytes(path: Union[str, Path], data: bytes, *,
                       category: str, critical: bool = False,
                       fsync: bool = True, plan: Any = _UNSET,
                       stacklevel: int = 3) -> bool:
    """Atomically publish ``data`` at ``path``; the one durable write.

    Writes to a ``mkstemp`` temp file in the target directory, flushes,
    fsyncs (unless ``fsync=False`` -- callers on hot write paths may
    trade sync cost for a bounded loss window), renames over ``path``,
    and fsyncs the directory.  Returns ``True`` when the rename
    completed.  Failure handling follows the module policy: best-effort
    calls warn once per (category, error kind) and return ``False``;
    ``critical=True`` raises :class:`CriticalWriteError`.

    Disk-fault injection (``REPRO_FAULTS``) is keyed by ``category``
    and the category-local write sequence number; ``plan`` overrides
    the environment plan (tests).  An injected ``renamecrash``
    deliberately leaks the temp file and raises
    :class:`~repro.run.faults.InjectedCrash` -- simulating the writer
    dying, which the retry machinery and orphan sweeping must absorb.
    """
    path = Path(path)
    active: Optional[FaultPlan] = plan_from_env() if plan is _UNSET \
        else plan
    seq = _next_seq(category)
    kind: Optional[str] = None
    if active is not None and not critical:
        kind = active.disk_fault(category, "write", seq)
    tmp: Optional[str] = None
    try:
        if kind == "enospc":
            raise InjectedDiskFault(
                errno.ENOSPC,
                f"injected ENOSPC ({category} write #{seq})")
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                if kind in ("torn", "shortwrite"):
                    fh.write(data[:active.torn_offset(len(data),
                                                      category, seq)])
                else:
                    fh.write(data)
                fh.flush()
                if fsync and kind != "fsyncdrop":
                    os.fsync(fh.fileno())
            if kind == "shortwrite":
                raise InjectedDiskFault(
                    errno.EIO,
                    f"injected short write ({category} write #{seq})")
            if kind == "renamecrash":
                raise InjectedCrash(
                    f"injected crash before rename ({category} write "
                    f"#{seq}; temp file left behind)")
            if kind == "eio":
                raise InjectedDiskFault(
                    errno.EIO,
                    f"injected EIO at rename ({category} write #{seq})")
            os.replace(tmp, path)
            tmp = None
        except InjectedCrash:
            raise   # simulated writer death: the orphan stays on disk
        except BaseException:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            raise
        if fsync and kind != "fsyncdrop":
            _fsync_dir(path.parent)
    except OSError as exc:
        if critical:
            raise CriticalWriteError(
                f"critical {category} write to {path} failed "
                f"({_error_kind(exc)}: {exc})") from exc
        _warn_once(category, exc, stacklevel)
        return False
    return True


def atomic_write_text(path: Union[str, Path], text: str, *,
                      category: str, critical: bool = False,
                      fsync: bool = True, plan: Any = _UNSET,
                      stacklevel: int = 4) -> bool:
    """UTF-8 text flavour of :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode("utf-8"),
                              category=category, critical=critical,
                              fsync=fsync, plan=plan,
                              stacklevel=stacklevel)


def atomic_write_json(path: Union[str, Path], payload: Any, *,
                      category: str, critical: bool = False,
                      fsync: bool = True, indent: Optional[int] = 1,
                      sort_keys: bool = True, plan: Any = _UNSET,
                      stacklevel: int = 5) -> bool:
    """JSON flavour of :func:`atomic_write_bytes` (trailing newline)."""
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    return atomic_write_text(path, text, category=category,
                             critical=critical, fsync=fsync, plan=plan,
                             stacklevel=stacklevel)


# --------------------------------------------------------------- framing

def write_framed(path: Union[str, Path], magic: bytes, blob: bytes, *,
                 category: str, critical: bool = False,
                 fsync: bool = True, plan: Any = _UNSET) -> bool:
    """Write ``magic + sha256(blob) + blob`` atomically.

    The standard binary framing (checkpoints use it): a fixed magic
    string, the 64-hex ascii digest of the payload, then the payload.
    """
    digest = hashlib.sha256(blob).hexdigest().encode("ascii")
    return atomic_write_bytes(path, magic + digest + blob,
                              category=category, critical=critical,
                              fsync=fsync, plan=plan, stacklevel=4)


def read_framed(path: Union[str, Path], magic: bytes) -> bytes:
    """Read and verify a framed file; the payload on success.

    Raises :class:`FramedReadError` on bad magic or checksum mismatch
    and ``OSError`` when the file cannot be read at all.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    if data[:len(magic)] != magic:
        raise FramedReadError(f"bad magic {data[:len(magic)]!r}")
    stored = data[len(magic):len(magic) + 64]
    blob = data[len(magic) + 64:]
    computed = hashlib.sha256(blob).hexdigest().encode("ascii")
    if computed != stored:
        raise FramedReadError(
            f"checksum mismatch (stored "
            f"{stored[:12].decode('ascii', 'replace')}..., computed "
            f"{computed[:12].decode('ascii')}...)")
    return blob


def body_checksum(body: Any) -> str:
    """Canonical sha256 over a JSON-serialisable body."""
    text = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def write_checked_json(path: Union[str, Path], body: Any, *,
                       category: str, critical: bool = False,
                       plan: Any = _UNSET) -> bool:
    """Write ``{"format", "checksum", "body"}`` JSON atomically.

    The JSON sibling of :func:`write_framed`: the stored checksum is
    over the canonical encoding of ``body``, so the recovery audit can
    verify the artifact without knowing its schema.
    """
    payload = {"format": CHECKED_JSON_FORMAT,
               "checksum": body_checksum(body),
               "body": body}
    return atomic_write_json(path, payload, category=category,
                             critical=critical, plan=plan)


def read_checked_json(path: Union[str, Path]) -> Any:
    """Read and verify a :func:`write_checked_json` artifact.

    Returns the ``body``; raises :class:`FramedReadError` on any
    structural or checksum defect and ``OSError`` when unreadable.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise FramedReadError(f"unparseable JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise FramedReadError("payload is not a JSON object")
    if data.get("format") != CHECKED_JSON_FORMAT:
        raise FramedReadError(
            f"format {data.get('format')!r} != {CHECKED_JSON_FORMAT}")
    if "body" not in data:
        raise FramedReadError("missing body")
    stored = data.get("checksum")
    computed = body_checksum(data["body"])
    if stored != computed:
        raise FramedReadError(
            f"checksum mismatch (stored {str(stored)[:12]}..., "
            f"computed {computed[:12]}...)")
    return data["body"]


# ------------------------------------------------------------ quarantine

def quarantine(path: Union[str, Path], reason: str, *,
               label: str = "artifact",
               quarantine_dir: Union[str, Path, None] = None,
               stacklevel: int = 3) -> Optional[Path]:
    """Move a corrupt file into a ``quarantine/`` sibling directory.

    Never silently overwrites or deletes evidence: the file keeps its
    name inside the quarantine directory (default
    ``<parent>/quarantine/``).  Returns the new location, or ``None``
    when the move itself failed (unwritable directory -- the corrupt
    file stays put, which is safe but noisy).  A
    :class:`RuntimeWarning` mentioning ``label`` and ``reason`` is
    emitted either way, matching the historical per-module messages.
    """
    path = Path(path)
    target_dir = Path(quarantine_dir) if quarantine_dir is not None \
        else path.parent / QUARANTINE_DIR
    moved: Optional[Path] = None
    try:
        target_dir.mkdir(parents=True, exist_ok=True)
        moved = target_dir / path.name
        os.replace(path, moved)
    except OSError:
        moved = None
    warnings.warn(f"quarantined corrupt {label} {path.name} ({reason})",
                  RuntimeWarning, stacklevel=stacklevel)
    return moved


# ---------------------------------------------------------- orphan sweep

def orphan_tmp_files(directory: Union[str, Path]) -> List[Path]:
    """The ``*.tmp`` files directly inside ``directory``, sorted."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.tmp"))


def sweep_orphans(directory: Union[str, Path],
                  ttl: float = ORPHAN_TTL,
                  now: Optional[float] = None) -> int:
    """Remove ``*.tmp`` files older than ``ttl`` seconds; the count.

    Only stale temp files go: anything younger than ``ttl`` may belong
    to a live writer and is left alone.  ``now`` overrides the
    housekeeping clock (tests).
    """
    if now is None:
        now = time_now()
    cutoff = now - ttl
    removed = 0
    for stray in orphan_tmp_files(directory):
        try:
            if stray.stat().st_mtime <= cutoff:
                stray.unlink()
                removed += 1
        except OSError:
            pass
    return removed


def time_now() -> float:
    """Wall-clock seconds for orphan aging only (housekeeping).

    Isolated in one function so the determinism linter exemption is
    explicit: nothing simulated ever reads this.
    """
    import time
    return time.time()  # repro-lint: disable=R002
