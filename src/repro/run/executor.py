"""Fault-isolating fan-out executor for independent simulation jobs.

:func:`run_many` takes a list of :class:`~repro.run.jobs.JobSpec` and
returns their results *in input order*, regardless of completion order,
so callers (figure sweeps, seed sweeps) see exactly the rows they asked
for.  Dispatch policy:

* every spec is first looked up in the result cache (when one is given);
* remaining misses run either serially in-process (``jobs=1``, the
  deterministic baseline) or on a ``ProcessPoolExecutor`` with ``jobs``
  workers;
* if the pool cannot be created or dies (restricted environments without
  ``fork``/semaphores, interpreter shutdown), the executor falls back to
  the serial path instead of failing the sweep.

Failures are isolated **per job**: an attempt that raises any exception
is retried up to :attr:`RetryPolicy.retries` times with deterministic
exponential backoff, an attempt that exceeds
:attr:`RetryPolicy.job_timeout` is abandoned and retried, and only a job
that exhausts its retries is reported as a *failed*
:class:`JobOutcome` (``result=None``) -- the rest of the sweep keeps
going.  Progress is journalled through an optional
:class:`~repro.run.manifest.SweepManifest` so interrupted sweeps resume
from the incomplete remainder.

Workers receive the plain-dict encoding of the spec and return the
plain-dict encoding of the result, so nothing that crosses the process
boundary depends on picklability of live simulator state.  None of the
resilience machinery touches simulated state: retries re-run the same
deterministic simulation, so a sweep that survives injected faults
produces byte-identical results to a fault-free run.
"""

from __future__ import annotations

import hashlib
import math
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.experiment import SimulationResult
from repro.run.cache import ResultCache
from repro.run.faults import plan_from_env
from repro.run.jobs import JobSpec
from repro.run.manifest import SweepManifest


def _execute_payload(payload: Dict[str, Any], attempt: int = 0
                     ) -> Tuple[Dict[str, Any], float]:
    """Worker entry point: rebuild the job, run it, ship the result back.

    Fault injection (``REPRO_FAULTS``) happens here, *before* the
    simulation runs, so an injected crash or hang never perturbs
    simulated state -- a retried attempt recomputes the identical
    result.
    """
    spec = JobSpec.from_dict(payload)
    # Host-side wall time for throughput reporting only; never feeds
    # simulated state.  The clock starts before fault injection so an
    # injected hang is charged to the attempt, like any real stall.
    start = time.perf_counter()  # repro-lint: disable=R002
    plan = plan_from_env()
    if plan is not None:
        fingerprint = spec.fingerprint()
        plan.maybe_crash(fingerprint, attempt)
        plan.maybe_hang(fingerprint, attempt)
    result = spec.run()
    return result.to_dict(), time.perf_counter() - start  # repro-lint: disable=R002


@dataclass(frozen=True)
class RetryPolicy:
    """Per-job failure handling knobs for :func:`run_many`.

    ``retries`` is the number of *additional* attempts after the first
    failure; ``job_timeout`` (seconds, ``None`` = unlimited) bounds one
    attempt's wall time.  On the process pool an overdue attempt is
    abandoned (the worker is left to drain) and retried; on the serial
    path the attempt cannot be interrupted, so the timeout is enforced
    post-hoc -- an over-budget attempt is discarded and retried, giving
    both paths the same observable semantics.

    Backoff between attempts is exponential with a deterministic
    fingerprint-derived jitter -- no wall-clock or global RNG feeds the
    schedule, so two runs of the same sweep back off identically.
    """

    retries: int = 2
    job_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    def backoff_delay(self, fingerprint: str, attempt: int) -> float:
        """Seconds to wait before attempt ``attempt`` (1-based retry)."""
        if attempt <= 0:
            return 0.0
        exponential = min(self.backoff_cap,
                          self.backoff_base * (2 ** (attempt - 1)))
        token = f"backoff:{fingerprint}:{attempt}"
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return exponential * (0.5 + unit / 2)

    def deadline_for(self, started: float) -> float:
        if self.job_timeout is None:
            return math.inf
        return started + self.job_timeout


#: Library default: a couple of retries, no timeout (opt-in via CLI).
DEFAULT_POLICY = RetryPolicy()


@dataclass
class JobOutcome:
    """One job's result plus execution accounting.

    ``result`` is ``None`` -- and :attr:`failed` true -- when the job
    exhausted its retries; ``error`` then holds the last failure text.
    """

    spec: JobSpec
    result: Optional[SimulationResult]
    wall_time: float      # seconds spent simulating (0.0 for cache hits)
    cached: bool = False
    attempts: int = 1     # executed attempts (0 for cache hits)
    error: str = ""

    @property
    def failed(self) -> bool:
        return self.result is None


@dataclass
class RunReport:
    """Results of one :func:`run_many` call, in input order."""

    outcomes: List[JobOutcome] = field(default_factory=list)
    wall_time: float = 0.0    # elapsed time of the whole run_many call
    jobs: int = 1             # worker count actually used
    fell_back_to_serial: bool = False

    @property
    def results(self) -> List[Optional[SimulationResult]]:
        """Results in input order (``None`` for failed jobs)."""
        return [o.result for o in self.outcomes]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def cache_misses(self) -> int:
        return len(self.outcomes) - self.cache_hits

    @property
    def failures(self) -> List[JobOutcome]:
        return [o for o in self.outcomes if o.failed]

    @property
    def retried(self) -> int:
        """Jobs that needed more than one attempt."""
        return sum(1 for o in self.outcomes if o.attempts > 1)

    @property
    def simulated_instructions(self) -> int:
        """Instructions actually simulated (cache hits cost nothing)."""
        return sum(o.spec.instructions + o.spec.warmup
                   for o in self.outcomes
                   if not o.cached and not o.failed)

    @property
    def throughput(self) -> float:
        """Simulated instructions per wall-clock second."""
        if self.wall_time <= 0:
            return 0.0
        return self.simulated_instructions / self.wall_time

    def format_summary(self) -> str:
        text = (f"{len(self.outcomes)} jobs ({self.cache_hits} cached) in "
                f"{self.wall_time:.2f}s with {self.jobs} worker(s), "
                f"{self.throughput:,.0f} simulated instr/s")
        if self.retried:
            text += f", {self.retried} retried"
        if self.failures:
            text += f", {len(self.failures)} FAILED"
        return text


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1: serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def _failure_text(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _serial_attempt(spec: JobSpec, attempt: int
                    ) -> Tuple[SimulationResult, float]:
    """One in-process attempt, with the same fault hooks as a worker.

    The clock starts before fault injection: the serial path enforces
    ``job_timeout`` post-hoc from this elapsed time, so a hang must be
    charged to the attempt for the timeout to ever trip.
    """
    start = time.perf_counter()  # repro-lint: disable=R002
    plan = plan_from_env()
    if plan is not None:
        fingerprint = spec.fingerprint()
        plan.maybe_crash(fingerprint, attempt)
        plan.maybe_hang(fingerprint, attempt)
    result = spec.run()
    return result, time.perf_counter() - start  # repro-lint: disable=R002


def _finish(spec: JobSpec, result: SimulationResult, elapsed: float,
            attempts: int, cache: Optional[ResultCache],
            manifest: Optional[SweepManifest]) -> JobOutcome:
    """Record a successful completion (cache write is best-effort)."""
    if cache is not None:
        cache.put(spec, result)
    if manifest is not None:
        manifest.mark_done(spec.fingerprint())
    return JobOutcome(spec, result, elapsed, attempts=attempts)


def _fail(spec: JobSpec, error: str, elapsed: float, attempts: int,
          manifest: Optional[SweepManifest]) -> JobOutcome:
    """Record a job that exhausted its retries; the sweep continues."""
    if manifest is not None:
        manifest.mark_failed(spec.fingerprint(), error)
    return JobOutcome(spec, None, elapsed, attempts=attempts, error=error)


def _run_serial(pending: Sequence[Tuple[int, JobSpec]],
                cache: Optional[ResultCache],
                outcomes: List[Optional[JobOutcome]],
                policy: RetryPolicy = DEFAULT_POLICY,
                manifest: Optional[SweepManifest] = None) -> None:
    for index, spec in pending:
        outcomes[index] = _run_one_serial(spec, cache, policy, manifest)


def _run_one_serial(spec: JobSpec, cache: Optional[ResultCache],
                    policy: RetryPolicy,
                    manifest: Optional[SweepManifest]) -> JobOutcome:
    fingerprint = spec.fingerprint()
    total_elapsed = 0.0
    error = ""
    for attempt in range(policy.retries + 1):
        if attempt:
            time.sleep(policy.backoff_delay(fingerprint, attempt))
        if manifest is not None:
            manifest.mark_running(fingerprint)
        try:
            result, elapsed = _serial_attempt(spec, attempt)
        except Exception as exc:   # noqa: BLE001 -- per-job isolation
            error = _failure_text(exc)
            if manifest is not None and attempt < policy.retries:
                manifest.mark_retrying(fingerprint, error)
            continue
        total_elapsed += elapsed
        if policy.job_timeout is not None and elapsed > policy.job_timeout:
            # The serial path cannot interrupt a running attempt, so the
            # timeout is enforced after the fact: discard and retry,
            # matching the pool's observable behaviour.
            error = (f"timeout: attempt took {elapsed:.2f}s "
                     f"(limit {policy.job_timeout:.2f}s)")
            if manifest is not None and attempt < policy.retries:
                manifest.mark_retrying(fingerprint, error)
            continue
        return _finish(spec, result, total_elapsed, attempt + 1, cache,
                       manifest)
    return _fail(spec, error, total_elapsed, policy.retries + 1, manifest)


def _run_pool(pending: Sequence[Tuple[int, JobSpec]], jobs: int,
              cache: Optional[ResultCache],
              outcomes: List[Optional[JobOutcome]],
              policy: RetryPolicy = DEFAULT_POLICY,
              manifest: Optional[SweepManifest] = None) -> bool:
    """Run misses on a process pool; ``False`` if the pool was unusable.

    Scheduling is slot-limited (at most ``jobs`` in-flight submissions)
    so a submitted job starts essentially immediately and its deadline
    can be measured from submission.  An overdue future is abandoned --
    the worker keeps draining in the background as a *zombie* occupying
    one slot until its bounded work finishes -- and the job is retried.
    If zombies ever occupy every slot the pool is recycled wholesale.
    Job-level exceptions are consumed per future; only pool-level
    breakage (no semaphores, dead workers) aborts to the serial
    fallback, which re-runs exactly the jobs without an outcome.
    """
    try:
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:                                # pragma: no cover
        return False

    try:
        pool = ProcessPoolExecutor(max_workers=jobs)
    except (OSError, PermissionError, RuntimeError):
        return False

    # Jobs waiting to (re)submit: (not-before time, index, spec, attempt,
    # elapsed-so-far, last error).  `active` maps future -> submission
    # record; `zombies` holds abandoned futures still draining a worker.
    queue: List[Tuple[float, int, JobSpec, int, float, str]] = []
    active: Dict[Any, Tuple[int, JobSpec, int, float, float]] = {}
    zombies: List[Any] = []
    now = time.perf_counter()  # repro-lint: disable=R002
    for index, spec in pending:
        queue.append((now, index, spec, 0, 0.0, ""))

    def settle(index: int, spec: JobSpec, attempt: int, elapsed: float,
               error: str, at: float) -> None:
        """Failed attempt: schedule a retry or record the failure."""
        if attempt < policy.retries:
            if manifest is not None:
                manifest.mark_retrying(spec.fingerprint(), error)
            delay = policy.backoff_delay(spec.fingerprint(), attempt + 1)
            queue.append((at + delay, index, spec, attempt + 1, elapsed,
                          error))
        else:
            outcomes[index] = _fail(spec, error, elapsed, attempt + 1,
                                    manifest)

    try:
        while queue or active:
            now = time.perf_counter()  # repro-lint: disable=R002
            zombies = [future for future in zombies if not future.done()]

            # Submit ready work while slots are free.
            free = jobs - len(active) - len(zombies)
            if free > 0 and queue:
                queue.sort(key=lambda item: item[0])
                held = []
                for item in queue:
                    not_before, index, spec, attempt, elapsed, error = item
                    if free > 0 and not_before <= now:
                        if manifest is not None:
                            manifest.mark_running(spec.fingerprint())
                        future = pool.submit(_execute_payload,
                                             spec.to_dict(), attempt)
                        active[future] = (index, spec, attempt, elapsed,
                                          policy.deadline_for(now))
                        free -= 1
                    else:
                        held.append(item)
                queue = held

            # Every slot wedged on an abandoned attempt: recycle the
            # pool so pending retries are not starved forever.
            if len(zombies) >= jobs and (queue or active):
                pool.shutdown(wait=False, cancel_futures=True)
                for future, (index, spec, attempt, elapsed,
                             _deadline) in active.items():
                    # Innocent in-flight jobs requeue at the same
                    # attempt; they were not at fault.
                    queue.append((now, index, spec, attempt, elapsed, ""))
                active.clear()
                zombies = []
                try:
                    pool = ProcessPoolExecutor(max_workers=jobs)
                except (OSError, PermissionError, RuntimeError):
                    return False
                continue

            if not active:
                if not queue:
                    break
                # Everything is backing off; sleep until the earliest.
                wake_at = min(item[0] for item in queue)
                time.sleep(max(0.01, min(wake_at - now, 0.5)))
                continue

            # Wake on first completion, next deadline, or next retry.
            horizon = min(record[4] for record in active.values())
            if queue:
                horizon = min(horizon, min(item[0] for item in queue))
            wait_for = None if horizon == math.inf \
                else max(0.0, min(horizon - now, 0.5))
            done, _ = wait(list(active), timeout=wait_for,
                           return_when=FIRST_COMPLETED)

            for future in done:
                index, spec, attempt, elapsed, _deadline = \
                    active.pop(future)
                at = time.perf_counter()  # repro-lint: disable=R002
                try:
                    result_dict, attempt_time = future.result()
                except BrokenProcessPool:
                    # Pool-level breakage: bail out; the serial fallback
                    # re-runs every job that has no outcome yet.
                    return False
                except Exception as exc:  # noqa: BLE001 -- per-future
                    settle(index, spec, attempt, elapsed,
                           _failure_text(exc), at)
                else:
                    result = SimulationResult.from_dict(result_dict)
                    outcomes[index] = _finish(
                        spec, result, elapsed + attempt_time, attempt + 1,
                        cache, manifest)

            # Abandon overdue attempts and retry them.
            now = time.perf_counter()  # repro-lint: disable=R002
            for future in [f for f, record in active.items()
                           if record[4] <= now]:
                index, spec, attempt, elapsed, _deadline = \
                    active.pop(future)
                if not future.cancel():
                    zombies.append(future)
                settle(index, spec, attempt, elapsed,
                       f"timeout: attempt exceeded "
                       f"{policy.job_timeout:.2f}s", now)
        return True
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def run_many(specs: Sequence[JobSpec], jobs: Optional[int] = None,
             cache: Optional[ResultCache] = None,
             policy: Optional[RetryPolicy] = None,
             manifest: Optional[SweepManifest] = None,
             resume: Optional[bool] = None) -> RunReport:
    """Execute ``specs`` and return a report with results in input order.

    Arguments left as ``None`` pick up the process-wide configuration
    (see :func:`repro.run.configure` / ``REPRO_JOBS``): worker count,
    shared cache, retry policy, sweep manifest, and resume mode.  Failed
    jobs (retries exhausted) appear as outcomes with ``result=None``
    rather than aborting the sweep.
    """
    if jobs is None or cache is None or policy is None \
            or manifest is None or resume is None:
        from repro.run import runner_state
        state = runner_state()
        jobs = state.jobs if jobs is None else jobs
        cache = state.cache if cache is None else cache
        policy = state.policy if policy is None else policy
        manifest = state.manifest if manifest is None else manifest
        resume = state.resume if resume is None else resume
    jobs = max(1, int(jobs))

    start = time.perf_counter()  # repro-lint: disable=R002
    if manifest is not None:
        fingerprints = [spec.fingerprint() for spec in specs]
        manifest.begin(fingerprints, [spec.describe() for spec in specs],
                       resume=bool(resume))

    outcomes: List[Optional[JobOutcome]] = [None] * len(specs)
    pending: List[Tuple[int, JobSpec]] = []
    for index, spec in enumerate(specs):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            outcomes[index] = JobOutcome(spec, hit, 0.0, cached=True,
                                         attempts=0)
            if manifest is not None:
                manifest.mark_done(spec.fingerprint(), cached=True)
        else:
            pending.append((index, spec))

    fell_back = False
    if pending:
        if jobs > 1 and len(pending) > 1:
            ok = _run_pool(pending, min(jobs, len(pending)), cache,
                           outcomes, policy, manifest)
            if not ok:
                fell_back = True
                _run_serial([p for p in pending
                             if outcomes[p[0]] is None], cache, outcomes,
                            policy, manifest)
        else:
            _run_serial(pending, cache, outcomes, policy, manifest)

    report = RunReport(outcomes=[o for o in outcomes if o is not None],
                       wall_time=time.perf_counter() - start,  # repro-lint: disable=R002
                       jobs=1 if (jobs == 1 or fell_back) else jobs,
                       fell_back_to_serial=fell_back)
    assert len(report.outcomes) == len(specs)
    return report
