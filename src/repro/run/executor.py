"""Fault-isolating fan-out executor for independent simulation jobs.

:func:`run_many` takes a list of :class:`~repro.run.jobs.JobSpec` and
returns their results *in input order*, regardless of completion order,
so callers (figure sweeps, seed sweeps) see exactly the rows they asked
for.  Dispatch policy:

* every spec is first looked up in the result cache (when one is given);
* jobs sharing a workload/seed/run-size are grouped onto a **trace
  arena** (:mod:`repro.trace.arena`): the group's first member runs
  serially while recording its instruction streams, which are packed and
  persisted once, and the remaining members replay the arena instead of
  regenerating their traces;
* remaining misses run either serially in-process (``jobs=1``, the
  deterministic baseline) or on the **persistent fork-server pool**
  (:mod:`repro.run.forkserver`) in chunked batches -- one pickle of a
  base job plus per-job deltas per chunk;
* if the pool cannot be created or dies (restricted environments without
  ``fork``/semaphores, interpreter shutdown), the executor falls back to
  the serial path instead of failing the sweep.

Failures are isolated **per job**: an attempt that raises any exception
is retried up to :attr:`RetryPolicy.retries` times with deterministic
exponential backoff, an attempt that exceeds
:attr:`RetryPolicy.job_timeout` is abandoned and retried, and only a job
that exhausts its retries is reported as a *failed*
:class:`JobOutcome` (``result=None``) -- the rest of the sweep keeps
going.  Progress is journalled through an optional
:class:`~repro.run.manifest.SweepManifest` so interrupted sweeps resume
from the incomplete remainder.  When ``job_timeout`` is set, chunks
shrink to one job so each attempt keeps its own deadline.

Arenas never affect results or cache keys: replay is byte-identical to
generation, an arena defect falls back to the generator path inside the
job, and the arena reference travels beside the spec -- never inside
:meth:`~repro.run.jobs.JobSpec.fingerprint`.
"""

from __future__ import annotations

import hashlib
import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.experiment import SimulationResult
from repro.run.cache import ResultCache
from repro.run.checkpoint import CheckpointStore
from repro.run.checkpoint import run_spec as _run_spec_checkpointed
from repro.run.faults import plan_from_env
from repro.run.jobs import JobSpec
from repro.run.manifest import SweepManifest

#: Environment override for arena usage: ``auto`` (default: share
#: traces across sweep groups of 2+), ``on`` (materialize even for
#: singleton groups), ``off`` (generator path only).
ARENAS_ENV = "REPRO_ARENAS"

_ARENA_MODES = ("auto", "on", "off")


def default_arena_mode() -> str:
    """Arena policy from ``REPRO_ARENAS`` (default ``auto``)."""
    mode = os.environ.get(ARENAS_ENV, "auto").strip().lower()
    return mode if mode in _ARENA_MODES else "auto"


def _execute_payload(payload: Dict[str, Any], attempt: int = 0
                     ) -> Tuple[Dict[str, Any], float]:
    """Worker entry point: rebuild the job, run it, ship the result back.

    Fault injection (``REPRO_FAULTS``) happens here, *before* the
    simulation runs, so an injected crash or hang never perturbs
    simulated state -- a retried attempt recomputes the identical
    result.  (The chunked pool path uses
    :func:`repro.run.forkserver._execute_batch` instead; this single-job
    entry remains for tools and tests that dispatch one payload.)
    """
    spec = JobSpec.from_dict(payload)
    # Host-side wall time for throughput reporting only; never feeds
    # simulated state.  The clock starts before fault injection so an
    # injected hang is charged to the attempt, like any real stall.
    start = time.perf_counter()  # repro-lint: disable=R002
    plan = plan_from_env()
    if plan is not None:
        fingerprint = spec.fingerprint()
        plan.maybe_crash(fingerprint, attempt)
        plan.maybe_hang(fingerprint, attempt)
    result = spec.run()
    return result.to_dict(), time.perf_counter() - start  # repro-lint: disable=R002


@dataclass(frozen=True)
class RetryPolicy:
    """Per-job failure handling knobs for :func:`run_many`.

    ``retries`` is the number of *additional* attempts after the first
    failure; ``job_timeout`` (seconds, ``None`` = unlimited) bounds one
    attempt's wall time.  On the process pool an overdue attempt is
    abandoned (the worker is left to drain) and retried; on the serial
    path the attempt cannot be interrupted, so the timeout is enforced
    post-hoc -- an over-budget attempt is discarded and retried, giving
    both paths the same observable semantics.

    Backoff between attempts is exponential with a deterministic
    fingerprint-derived jitter -- no wall-clock or global RNG feeds the
    schedule, so two runs of the same sweep back off identically.
    """

    retries: int = 2
    job_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    def backoff_delay(self, fingerprint: str, attempt: int) -> float:
        """Seconds to wait before attempt ``attempt`` (1-based retry)."""
        if attempt <= 0:
            return 0.0
        exponential = min(self.backoff_cap,
                          self.backoff_base * (2 ** (attempt - 1)))
        token = f"backoff:{fingerprint}:{attempt}"
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return exponential * (0.5 + unit / 2)

    def deadline_for(self, started: float) -> float:
        if self.job_timeout is None:
            return math.inf
        return started + self.job_timeout


#: Library default: a couple of retries, no timeout (opt-in via CLI).
DEFAULT_POLICY = RetryPolicy()


@dataclass
class JobOutcome:
    """One job's result plus execution accounting.

    ``result`` is ``None`` -- and :attr:`failed` true -- when the job
    exhausted its retries; ``error`` then holds the last failure text.
    """

    spec: JobSpec
    result: Optional[SimulationResult]
    wall_time: float      # seconds spent simulating (0.0 for cache hits)
    cached: bool = False
    attempts: int = 1     # executed attempts (0 for cache hits)
    error: str = ""
    ckpt_s: float = 0.0   # host seconds spent writing checkpoints
    resumed_from: int = 0  # retired-instruction offset the winning
    #                        attempt resumed from (0 = cold start)
    bundle: str = ""      # triage bundle path for a failed job ("" none)

    @property
    def failed(self) -> bool:
        return self.result is None


@dataclass
class RunReport:
    """Results of one :func:`run_many` call, in input order."""

    outcomes: List[JobOutcome] = field(default_factory=list)
    wall_time: float = 0.0    # elapsed time of the whole run_many call
    jobs: int = 1             # worker count actually used
    fell_back_to_serial: bool = False
    trace_gen_s: float = 0.0  # time spent packing/writing trace arenas
    arena_jobs: int = 0       # jobs dispatched with an arena reference
    dispatch: str = "serial"  # dispatcher that finished the batch

    @property
    def results(self) -> List[Optional[SimulationResult]]:
        """Results in input order (``None`` for failed jobs)."""
        return [o.result for o in self.outcomes]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def cache_misses(self) -> int:
        return len(self.outcomes) - self.cache_hits

    @property
    def failures(self) -> List[JobOutcome]:
        return [o for o in self.outcomes if o.failed]

    @property
    def retried(self) -> int:
        """Jobs that needed more than one attempt."""
        return sum(1 for o in self.outcomes if o.attempts > 1)

    @property
    def simulated_instructions(self) -> int:
        """Instructions actually simulated (cache hits cost nothing)."""
        return sum(o.spec.instructions + o.spec.warmup
                   for o in self.outcomes
                   if not o.cached and not o.failed)

    @property
    def checkpoint_s(self) -> float:
        """Host seconds spent writing checkpoints across all jobs."""
        return sum(o.ckpt_s for o in self.outcomes)

    @property
    def resumed(self) -> int:
        """Jobs whose winning attempt restarted from a checkpoint."""
        return sum(1 for o in self.outcomes if o.resumed_from > 0)

    @property
    def sim_s(self) -> float:
        """Wall time net of arena packing/writing and checkpoint
        overhead: pure simulation time."""
        return max(0.0, self.wall_time - self.trace_gen_s
                   - self.checkpoint_s)

    @property
    def throughput(self) -> float:
        """Simulated instructions per wall-clock second."""
        if self.wall_time <= 0:
            return 0.0
        return self.simulated_instructions / self.wall_time

    def format_summary(self) -> str:
        text = (f"{len(self.outcomes)} jobs ({self.cache_hits} cached) in "
                f"{self.wall_time:.2f}s with {self.jobs} worker(s), "
                f"{self.throughput:,.0f} simulated instr/s")
        if self.dispatch not in ("serial", "pool"):
            text += f" via {self.dispatch}"
        if self.arena_jobs:
            text += f", {self.arena_jobs} replayed from arenas"
        if self.trace_gen_s > 0:
            text += f" (trace gen {self.trace_gen_s:.2f}s)"
        if self.checkpoint_s > 0:
            text += f" (checkpoints {self.checkpoint_s:.2f}s)"
        if self.retried:
            text += f", {self.retried} retried"
        if self.resumed:
            text += f", {self.resumed} resumed from checkpoints"
        if self.failures:
            text += f", {len(self.failures)} FAILED"
        return text


#: Process-wide execution totals accumulated across ``run_many`` calls.
#: ``repro report`` samples these around each phase to attribute wall
#: time to simulation vs. arena generation vs. checkpoint writes.
_TOTALS: Dict[str, float] = {
    "wall_s": 0.0, "trace_gen_s": 0.0, "checkpoint_s": 0.0,
    "jobs": 0, "cache_hits": 0, "resumed": 0, "failed": 0,
}


def run_totals() -> Dict[str, float]:
    """A snapshot of the process-wide ``run_many`` accounting totals."""
    return dict(_TOTALS)


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1: serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def _failure_text(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _serial_attempt(spec: JobSpec, attempt: int,
                    workload: Optional[Any] = None,
                    cache: Optional[ResultCache] = None,
                    checkpoint_every: int = 0
                    ) -> Tuple[SimulationResult, float, Dict[str, Any]]:
    """One in-process attempt, with the same fault hooks as a worker.

    The clock starts before fault injection: the serial path enforces
    ``job_timeout`` post-hoc from this elapsed time, so a hang must be
    charged to the attempt for the timeout to ever trip.  ``workload``
    optionally substitutes a trace arena or recording wrapper for the
    spec's own generators (see :meth:`JobSpec.run`).  With a ``cache``,
    the attempt runs through the checkpointing runner: it resumes from
    the newest checkpoint left by a prior attempt, writes checkpoints
    every ``checkpoint_every`` retired instructions, and emits a triage
    bundle beside the cache on failure.  Returns ``(result, elapsed,
    info)`` where ``info`` carries ``ckpt_s`` / ``resumed_from``.
    """
    start = time.perf_counter()  # repro-lint: disable=R002
    plan = plan_from_env()
    if plan is not None:
        fingerprint = spec.fingerprint()
        plan.maybe_crash(fingerprint, attempt)
        plan.maybe_hang(fingerprint, attempt)
    if cache is not None:
        store = CheckpointStore.for_job(cache.path, spec.fingerprint()) \
            if checkpoint_every > 0 else None
        result, info = _run_spec_checkpointed(
            spec, workload=workload, store=store, every=checkpoint_every,
            faults=plan, attempt=attempt, triage_dir=cache.path)
    else:
        result = spec.run(workload=workload)
        info = {}
    return result, time.perf_counter() - start, info  # repro-lint: disable=R002


def _finish(spec: JobSpec, result: SimulationResult, elapsed: float,
            attempts: int, cache: Optional[ResultCache],
            manifest: Optional[SweepManifest], ckpt_s: float = 0.0,
            resumed_from: int = 0) -> JobOutcome:
    """Record a successful completion (cache write is best-effort)."""
    if cache is not None:
        cache.put(spec, result)
    if manifest is not None:
        fingerprint = spec.fingerprint()
        manifest.mark_attempt(fingerprint, attempts - 1, "ok",
                              start_offset=resumed_from)
        manifest.mark_done(fingerprint)
    return JobOutcome(spec, result, elapsed, attempts=attempts,
                      ckpt_s=ckpt_s, resumed_from=resumed_from)


def _fail(spec: JobSpec, error: str, elapsed: float, attempts: int,
          manifest: Optional[SweepManifest],
          bundle: str = "") -> JobOutcome:
    """Record a job that exhausted its retries; the sweep continues."""
    if manifest is not None:
        manifest.mark_failed(spec.fingerprint(), error)
    return JobOutcome(spec, None, elapsed, attempts=attempts, error=error,
                      bundle=bundle)


def _run_serial(pending: Sequence[Tuple[int, JobSpec]],
                cache: Optional[ResultCache],
                outcomes: List[Optional[JobOutcome]],
                policy: RetryPolicy = DEFAULT_POLICY,
                manifest: Optional[SweepManifest] = None,
                workloads: Optional[Dict[int, Any]] = None,
                checkpoint_every: int = 0) -> None:
    workloads = workloads or {}
    for index, spec in pending:
        outcomes[index] = _run_one_serial(spec, cache, policy, manifest,
                                          workload=workloads.get(index),
                                          checkpoint_every=checkpoint_every)


def _run_one_serial(spec: JobSpec, cache: Optional[ResultCache],
                    policy: RetryPolicy,
                    manifest: Optional[SweepManifest],
                    workload: Optional[Any] = None,
                    checkpoint_every: int = 0) -> JobOutcome:
    fingerprint = spec.fingerprint()
    total_elapsed = 0.0
    total_ckpt_s = 0.0
    error = ""
    bundle = ""
    for attempt in range(policy.retries + 1):
        if attempt:
            time.sleep(policy.backoff_delay(fingerprint, attempt))
        if manifest is not None:
            manifest.mark_running(fingerprint)
        try:
            result, elapsed, info = _serial_attempt(
                spec, attempt, workload=workload, cache=cache,
                checkpoint_every=checkpoint_every)
        except Exception as exc:   # noqa: BLE001 -- per-job isolation
            error = _failure_text(exc)
            bundle = getattr(exc, "__triage_bundle__", bundle)
            if manifest is not None:
                manifest.mark_attempt(
                    fingerprint, attempt, "failed", error,
                    start_offset=getattr(exc, "__resumed_from__", 0))
                if attempt < policy.retries:
                    manifest.mark_retrying(fingerprint, error)
            continue
        total_elapsed += elapsed
        total_ckpt_s += float(info.get("ckpt_s", 0.0))
        if policy.job_timeout is not None and elapsed > policy.job_timeout:
            # The serial path cannot interrupt a running attempt, so the
            # timeout is enforced after the fact: discard and retry,
            # matching the pool's observable behaviour.
            error = (f"timeout: attempt took {elapsed:.2f}s "
                     f"(limit {policy.job_timeout:.2f}s)")
            if manifest is not None:
                manifest.mark_attempt(
                    fingerprint, attempt, "timeout", error,
                    start_offset=int(info.get("resumed_from", 0)))
                if attempt < policy.retries:
                    manifest.mark_retrying(fingerprint, error)
            continue
        return _finish(spec, result, total_elapsed, attempt + 1, cache,
                       manifest, ckpt_s=total_ckpt_s,
                       resumed_from=int(info.get("resumed_from", 0)))
    return _fail(spec, error, total_elapsed, policy.retries + 1, manifest,
                 bundle=bundle)


# ------------------------------------------------------------------ arenas

def _resolve_trace_dir(trace_dir: Optional[str],
                       cache: Optional[ResultCache]) -> Optional[Path]:
    """Where arenas live: explicit dir > ``REPRO_TRACE_DIR`` > beside the
    result cache > nowhere (arenas disabled)."""
    from repro.trace import arena as trace_arena
    if trace_dir is not None:
        return Path(trace_dir)
    env = trace_arena.default_trace_dir()
    if env is not None:
        return Path(env)
    if cache is not None:
        return Path(cache.path) / "traces"
    return None


def _materialize_arenas(pending: Sequence[Tuple[int, JobSpec]],
                        cache: Optional[ResultCache],
                        outcomes: List[Optional[JobOutcome]],
                        policy: RetryPolicy,
                        manifest: Optional[SweepManifest],
                        trace_dir: Path,
                        mode: str,
                        checkpoint_every: int = 0
                        ) -> Tuple[Dict[int, Any], float]:
    """Group pending jobs by arena key; ensure each group's arena exists.

    Missing arenas are materialized by running the group's *first*
    member serially with a recording tee (full retry/timeout/fault
    semantics apply -- the recording job is an ordinary job); its
    outcome is filled in directly and the remaining members become arena
    consumers.  Returns ``(index -> arena handle, seconds spent
    packing/writing)``.  In ``auto`` mode singleton groups are left on
    the generator path (an arena can't pay for itself there); ``on``
    materializes unconditionally.
    """
    from repro.trace import arena as trace_arena
    handles: Dict[int, Any] = {}
    trace_gen_s = 0.0
    groups: Dict[str, List[Tuple[int, JobSpec]]] = {}
    for index, spec in pending:
        key = trace_arena.arena_key(spec.workload.to_dict(),
                                    spec.params.n_nodes, spec.seed,
                                    spec.instructions + spec.warmup)
        groups.setdefault(key, []).append((index, spec))
    for key, members in groups.items():
        if mode == "auto" and len(members) < 2:
            continue
        path = trace_dir / f"{key}.arena"
        handle = trace_arena.load_cached(path)
        consumers = members
        if handle is None:
            index, spec = members[0]
            consumers = members[1:]
            try:
                recorder = trace_arena.ArenaRecorder(
                    spec.workload.build(), spec.params.n_nodes, spec.seed,
                    spec.workload.to_dict(),
                    spec.instructions + spec.warmup)
                recording = recorder.workload()
            except Exception:  # noqa: BLE001 -- job isolation owns this
                recorder, recording = None, None
            outcomes[index] = _run_one_serial(
                spec, cache, policy, manifest, workload=recording,
                checkpoint_every=checkpoint_every)
            if recorder is not None and not outcomes[index].failed:
                started = time.perf_counter()  # repro-lint: disable=R002
                wrote = recorder.write(path)
                trace_gen_s += time.perf_counter() - started  # repro-lint: disable=R002
                if wrote:
                    handle = trace_arena.load_cached(path)
        if handle is not None:
            for index, _spec in consumers:
                handles[index] = handle
    return handles, trace_gen_s


# -------------------------------------------------------------------- pool

def _chunk_size(n_pending: int, jobs: int, policy: RetryPolicy) -> int:
    """Jobs per dispatch chunk.

    With a ``job_timeout`` every chunk is a single job so each attempt
    keeps its own deadline; otherwise aim for ~4 chunks per worker (load
    balance) capped at 8 jobs per pickle.
    """
    if policy.job_timeout is not None:
        return 1
    return max(1, min(8, math.ceil(n_pending / (jobs * 4))))


def _run_pool(pending: Sequence[Tuple[int, JobSpec]], jobs: int,
              cache: Optional[ResultCache],
              outcomes: List[Optional[JobOutcome]],
              policy: RetryPolicy = DEFAULT_POLICY,
              manifest: Optional[SweepManifest] = None,
              arena_paths: Optional[Dict[int, str]] = None,
              checkpoint_every: int = 0) -> bool:
    """Run misses on the persistent pool; ``False`` if it was unusable.

    Jobs are dispatched in chunks (:func:`_chunk_size` per future): each
    chunk ships one base job dict plus per-job deltas and an optional
    arena reference, and returns per-job outcome dicts, so one pickle
    amortizes over the chunk while failure isolation stays per job.

    Scheduling is slot-limited (at most ``jobs`` in-flight futures) so a
    submitted chunk starts essentially immediately and its deadline can
    be measured from submission (timeouts force single-job chunks).  An
    overdue future is abandoned -- the worker keeps draining in the
    background as a *zombie* occupying one slot until its bounded work
    finishes -- and the job is retried.  If zombies ever occupy every
    slot the pool is recycled wholesale; a run that ends with zombies
    outstanding also recycles it so the next sweep starts with clean
    workers.  Job-level failures are consumed per entry; only pool-level
    breakage (no semaphores, dead workers) aborts to the serial
    fallback, which re-runs exactly the jobs without an outcome.
    """
    try:
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:                                # pragma: no cover
        return False
    from repro.run import forkserver

    pool = forkserver.get_pool(jobs)
    if pool is None:
        return False
    arena_paths = arena_paths or {}
    chunk = _chunk_size(len(pending), jobs, policy)

    # Jobs waiting to (re)submit: (not-before time, index, spec, attempt,
    # elapsed-so-far, last error).  `active` maps future -> (chunk
    # entries, deadline); `zombies` holds abandoned futures still
    # draining a worker.
    queue: List[Tuple[float, int, JobSpec, int, float, str]] = []
    active: Dict[Any, Tuple[List[Tuple[int, JobSpec, int, float]],
                            float]] = {}
    zombies: List[Any] = []
    now = time.perf_counter()  # repro-lint: disable=R002
    for index, spec in pending:
        queue.append((now, index, spec, 0, 0.0, ""))

    def settle(index: int, spec: JobSpec, attempt: int, elapsed: float,
               error: str, at: float, kind: str = "failed",
               start_offset: int = 0, bundle: str = "") -> None:
        """Failed attempt: schedule a retry or record the failure.

        The attempt log is written first: the host deadline and a late
        worker failure can both reach here for the same attempt, and
        :meth:`SweepManifest.mark_attempt` keeps exactly one outcome.
        """
        if manifest is not None:
            manifest.mark_attempt(spec.fingerprint(), attempt, kind,
                                  error, start_offset=start_offset)
        if attempt < policy.retries:
            if manifest is not None:
                manifest.mark_retrying(spec.fingerprint(), error)
            delay = policy.backoff_delay(spec.fingerprint(), attempt + 1)
            queue.append((at + delay, index, spec, attempt + 1, elapsed,
                          error))
        else:
            outcomes[index] = _fail(spec, error, elapsed, attempt + 1,
                                    manifest, bundle=bundle)

    def submit(ready: List[Tuple[float, int, JobSpec, int, float, str]],
               at: float) -> None:
        """Dispatch one chunk of ready queue items as a single future."""
        entries = [(index, spec, attempt, elapsed)
                   for (_nb, index, spec, attempt, elapsed, _e) in ready]
        if manifest is not None:
            for _index, spec, _attempt, _elapsed in entries:
                manifest.mark_running(spec.fingerprint())
        payload = forkserver.make_batch_payload(
            entries[0][1].to_dict(),
            [(spec.to_dict(), attempt, arena_paths.get(index))
             for index, spec, attempt, _elapsed in entries],
            cache_dir=str(cache.path) if cache is not None else None,
            checkpoint_every=checkpoint_every)
        future = pool.submit(forkserver._execute_batch, payload)
        active[future] = (entries, policy.deadline_for(at))

    try:
        while queue or active:
            now = time.perf_counter()  # repro-lint: disable=R002
            zombies = [future for future in zombies if not future.done()]

            # Submit ready work in chunks while slots are free.
            free = jobs - len(active) - len(zombies)
            if free > 0 and queue:
                queue.sort(key=lambda item: item[0])
                ready = [item for item in queue if item[0] <= now]
                held = [item for item in queue if item[0] > now]
                while free > 0 and ready:
                    submit(ready[:chunk], now)
                    ready = ready[chunk:]
                    free -= 1
                queue = held + ready

            # Every slot wedged on an abandoned attempt: recycle the
            # pool so pending retries are not starved forever.
            if len(zombies) >= jobs and (queue or active):
                forkserver.recycle_pool()
                for future, (entries, _deadline) in active.items():
                    # Innocent in-flight jobs requeue at the same
                    # attempt; they were not at fault.
                    for index, spec, attempt, elapsed in entries:
                        queue.append((now, index, spec, attempt, elapsed,
                                      ""))
                active.clear()
                zombies = []
                pool = forkserver.get_pool(jobs)
                if pool is None:
                    return False
                continue

            if not active:
                if not queue:
                    break
                # Everything is backing off; sleep until the earliest.
                wake_at = min(item[0] for item in queue)
                time.sleep(max(0.01, min(wake_at - now, 0.5)))
                continue

            # Wake on first completion, next deadline, or next retry.
            horizon = min(record[1] for record in active.values())
            if queue:
                horizon = min(horizon, min(item[0] for item in queue))
            wait_for = None if horizon == math.inf \
                else max(0.0, min(horizon - now, 0.5))
            done, _ = wait(list(active), timeout=wait_for,
                           return_when=FIRST_COMPLETED)

            for future in done:
                entries, _deadline = active.pop(future)
                at = time.perf_counter()  # repro-lint: disable=R002
                try:
                    batch = future.result()
                except BrokenProcessPool:
                    # Pool-level breakage: recycle and bail out; the
                    # serial fallback re-runs every job without an
                    # outcome yet.
                    forkserver.recycle_pool()
                    return False
                except Exception as exc:  # noqa: BLE001 -- per-future
                    for index, spec, attempt, elapsed in entries:
                        settle(index, spec, attempt, elapsed,
                               _failure_text(exc), at)
                    continue
                for (index, spec, attempt, elapsed), job in \
                        zip(entries, batch):
                    attempt_time = float(job.get("elapsed", 0.0))
                    if job.get("ok"):
                        result = SimulationResult.from_dict(job["result"])
                        outcomes[index] = _finish(
                            spec, result, elapsed + attempt_time,
                            attempt + 1, cache, manifest,
                            ckpt_s=float(job.get("ckpt_s", 0.0)),
                            resumed_from=int(job.get("resumed_from", 0)))
                    else:
                        settle(index, spec, attempt,
                               elapsed + attempt_time,
                               job.get("error", "worker returned no "
                                                "outcome"), at,
                               start_offset=int(job.get("start_offset",
                                                        0)),
                               bundle=str(job.get("bundle", "")))

            # Abandon overdue attempts and retry them.
            now = time.perf_counter()  # repro-lint: disable=R002
            for future in [f for f, record in active.items()
                           if record[1] <= now]:
                entries, _deadline = active.pop(future)
                if not future.cancel():
                    zombies.append(future)
                for index, spec, attempt, elapsed in entries:
                    settle(index, spec, attempt, elapsed,
                           f"timeout: attempt exceeded "
                           f"{policy.job_timeout:.2f}s", now,
                           kind="timeout")
        return True
    finally:
        # The pool outlives this call (warm workers for the next sweep)
        # unless abandoned attempts are still draining inside it.
        if zombies:
            forkserver.recycle_pool()


def run_many(specs: Sequence[JobSpec], jobs: Optional[int] = None,
             cache: Optional[ResultCache] = None,
             policy: Optional[RetryPolicy] = None,
             manifest: Optional[SweepManifest] = None,
             resume: Optional[bool] = None,
             arenas: Optional[str] = None,
             trace_dir: Optional[str] = None,
             checkpoint_every: Optional[int] = None,
             dispatch: Optional[Any] = None,
             workers: Optional[Sequence[str]] = None) -> RunReport:
    """Execute ``specs`` and return a report with results in input order.

    Arguments left as ``None`` pick up the process-wide configuration
    (see :func:`repro.run.configure` / ``REPRO_JOBS`` /
    ``REPRO_ARENAS`` / ``REPRO_TRACE_DIR``): worker count, shared cache,
    retry policy, sweep manifest, resume mode, and arena policy.
    ``arenas`` is ``auto`` / ``on`` / ``off`` (booleans accepted);
    ``trace_dir`` overrides where arenas are stored (default: a
    ``traces/`` directory beside the result cache when one is active).
    ``checkpoint_every`` is the mid-simulation checkpoint interval in
    retired instructions (0 disables writes; resuming from checkpoints
    left by earlier attempts stays on).  Checkpoints and triage bundles
    need somewhere durable to live, so both activate only when a result
    cache is in use.  Failed jobs (retries exhausted) appear as
    outcomes with ``result=None`` rather than aborting the sweep.

    ``dispatch`` selects the execution strategy chain (see
    :func:`repro.run.dispatch.resolve_chain`): ``"local"`` (pool then
    serial; the historical behaviour), ``"fabric"`` (multi-host
    coordinator, degrading to pool then serial), a ready
    :class:`~repro.run.dispatch.Dispatcher`, or an explicit list.
    ``workers`` supplies fabric worker specs (``spawn:N`` /
    ``ssh:HOST`` / ``wait:N``).  Whatever the chain, completed outcomes
    survive strategy failures: each fallback re-runs only the jobs
    still missing an outcome, and byte-identical results are guaranteed
    because every strategy executes the same per-job path.
    """
    if jobs is None or cache is None or policy is None \
            or manifest is None or resume is None or arenas is None \
            or trace_dir is None or checkpoint_every is None \
            or dispatch is None or workers is None:
        from repro.run import runner_state
        state = runner_state()
        jobs = state.jobs if jobs is None else jobs
        cache = state.cache if cache is None else cache
        policy = state.policy if policy is None else policy
        manifest = state.manifest if manifest is None else manifest
        resume = state.resume if resume is None else resume
        arenas = state.arenas if arenas is None else arenas
        trace_dir = state.trace_dir if trace_dir is None else trace_dir
        if checkpoint_every is None:
            checkpoint_every = state.checkpoint_every
        dispatch = state.dispatch if dispatch is None else dispatch
        workers = state.workers if workers is None else workers
    jobs = max(1, int(jobs))
    checkpoint_every = max(0, int(checkpoint_every))
    if arenas is True:
        arenas = "on"
    elif arenas is False:
        arenas = "off"
    elif arenas not in _ARENA_MODES:
        arenas = "auto"

    start = time.perf_counter()  # repro-lint: disable=R002
    if manifest is not None:
        fingerprints = [spec.fingerprint() for spec in specs]
        manifest.begin(fingerprints, [spec.describe() for spec in specs],
                       resume=bool(resume))

    outcomes: List[Optional[JobOutcome]] = [None] * len(specs)
    pending: List[Tuple[int, JobSpec]] = []
    for index, spec in enumerate(specs):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            outcomes[index] = JobOutcome(spec, hit, 0.0, cached=True,
                                         attempts=0)
            if manifest is not None:
                manifest.mark_done(spec.fingerprint(), cached=True)
        else:
            pending.append((index, spec))

    trace_gen_s = 0.0
    arena_handles: Dict[int, Any] = {}
    if pending and arenas != "off":
        directory = _resolve_trace_dir(trace_dir, cache)
        if directory is not None:
            arena_handles, trace_gen_s = _materialize_arenas(
                pending, cache, outcomes, policy, manifest, directory,
                arenas, checkpoint_every=checkpoint_every)
            pending = [p for p in pending if outcomes[p[0]] is None]

    fell_back = False
    used = "serial"
    if pending:
        from repro.run.dispatch import DispatchContext, resolve_chain
        arena_paths = {index: str(handle.path)
                       for index, handle in arena_handles.items()}
        ctx = DispatchContext(cache=cache, outcomes=outcomes,
                              policy=policy, manifest=manifest,
                              workloads=arena_handles,
                              arena_paths=arena_paths,
                              checkpoint_every=checkpoint_every,
                              jobs=jobs)
        chain = resolve_chain(dispatch, jobs, len(pending),
                              workers=workers or ())
        for strategy in chain:
            remaining = [p for p in pending if outcomes[p[0]] is None]
            if not remaining:
                break
            if strategy.run(remaining, ctx):
                used = strategy.name
        fell_back = used == "serial" and chain[0].name != "serial"

    report = RunReport(outcomes=[o for o in outcomes if o is not None],
                       wall_time=time.perf_counter() - start,  # repro-lint: disable=R002
                       jobs=1 if (jobs == 1 or fell_back) else jobs,
                       fell_back_to_serial=fell_back,
                       trace_gen_s=trace_gen_s,
                       arena_jobs=len(arena_handles),
                       dispatch=used)
    assert len(report.outcomes) == len(specs)
    _TOTALS["wall_s"] += report.wall_time
    _TOTALS["trace_gen_s"] += report.trace_gen_s
    _TOTALS["checkpoint_s"] += report.checkpoint_s
    _TOTALS["jobs"] += len(report.outcomes)
    _TOTALS["cache_hits"] += report.cache_hits
    _TOTALS["resumed"] += report.resumed
    _TOTALS["failed"] += len(report.failures)
    return report
