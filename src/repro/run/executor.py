"""Fan-out executor for independent simulation jobs.

:func:`run_many` takes a list of :class:`~repro.run.jobs.JobSpec` and
returns their results *in input order*, regardless of completion order,
so callers (figure sweeps, seed sweeps) see exactly the rows they asked
for.  Dispatch policy:

* every spec is first looked up in the result cache (when one is given);
* remaining misses run either serially in-process (``jobs=1``, the
  deterministic baseline) or on a ``ProcessPoolExecutor`` with ``jobs``
  workers;
* if the pool cannot be created or dies (restricted environments without
  ``fork``/semaphores, interpreter shutdown), the executor falls back to
  the serial path instead of failing the sweep.

Workers receive the plain-dict encoding of the spec and return the
plain-dict encoding of the result, so nothing that crosses the process
boundary depends on picklability of live simulator state.  Per-job wall
time and simulated-instruction throughput are recorded in the returned
:class:`RunReport`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.experiment import SimulationResult
from repro.run.cache import ResultCache
from repro.run.jobs import JobSpec


def _execute_payload(payload: Dict[str, Any]
                     ) -> Tuple[Dict[str, Any], float]:
    """Worker entry point: rebuild the job, run it, ship the result back."""
    spec = JobSpec.from_dict(payload)
    # Host-side wall time for throughput reporting only; never feeds
    # simulated state.
    start = time.perf_counter()  # repro-lint: disable=R002
    result = spec.run()
    return result.to_dict(), time.perf_counter() - start  # repro-lint: disable=R002


@dataclass
class JobOutcome:
    """One job's result plus execution accounting."""

    spec: JobSpec
    result: SimulationResult
    wall_time: float      # seconds spent simulating (0.0 for cache hits)
    cached: bool = False


@dataclass
class RunReport:
    """Results of one :func:`run_many` call, in input order."""

    outcomes: List[JobOutcome] = field(default_factory=list)
    wall_time: float = 0.0    # elapsed time of the whole run_many call
    jobs: int = 1             # worker count actually used
    fell_back_to_serial: bool = False

    @property
    def results(self) -> List[SimulationResult]:
        return [o.result for o in self.outcomes]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def cache_misses(self) -> int:
        return len(self.outcomes) - self.cache_hits

    @property
    def simulated_instructions(self) -> int:
        """Instructions actually simulated (cache hits cost nothing)."""
        return sum(o.spec.instructions + o.spec.warmup
                   for o in self.outcomes if not o.cached)

    @property
    def throughput(self) -> float:
        """Simulated instructions per wall-clock second."""
        if self.wall_time <= 0:
            return 0.0
        return self.simulated_instructions / self.wall_time

    def format_summary(self) -> str:
        return (f"{len(self.outcomes)} jobs ({self.cache_hits} cached) in "
                f"{self.wall_time:.2f}s with {self.jobs} worker(s), "
                f"{self.throughput:,.0f} simulated instr/s")


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1: serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def _run_serial(pending: Sequence[Tuple[int, JobSpec]],
                cache: Optional[ResultCache],
                outcomes: List[Optional[JobOutcome]]) -> None:
    for index, spec in pending:
        start = time.perf_counter()  # repro-lint: disable=R002
        result = spec.run()
        elapsed = time.perf_counter() - start  # repro-lint: disable=R002
        if cache is not None:
            cache.put(spec, result)
        outcomes[index] = JobOutcome(spec, result, elapsed)


def _run_pool(pending: Sequence[Tuple[int, JobSpec]], jobs: int,
              cache: Optional[ResultCache],
              outcomes: List[Optional[JobOutcome]]) -> bool:
    """Run misses on a process pool; ``False`` if the pool was unusable."""
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:                                # pragma: no cover
        return False
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [(index, spec,
                        pool.submit(_execute_payload, spec.to_dict()))
                       for index, spec in pending]
            for index, spec, future in futures:
                result_dict, elapsed = future.result()
                result = SimulationResult.from_dict(result_dict)
                if cache is not None:
                    cache.put(spec, result)
                outcomes[index] = JobOutcome(spec, result, elapsed)
    except (OSError, PermissionError, BrokenProcessPool, RuntimeError):
        return False
    return True


def run_many(specs: Sequence[JobSpec], jobs: Optional[int] = None,
             cache: Optional[ResultCache] = None) -> RunReport:
    """Execute ``specs`` and return a report with results in input order.

    ``jobs=None`` uses the configured default (see
    :func:`repro.run.configure` / ``REPRO_JOBS``); ``cache=None`` with
    ``jobs=None`` likewise picks up the configured shared cache.
    """
    if jobs is None or cache is None:
        from repro.run import runner_defaults
        cfg_jobs, cfg_cache = runner_defaults()
        if jobs is None:
            jobs = cfg_jobs
        if cache is None:
            cache = cfg_cache
    jobs = max(1, int(jobs))

    start = time.perf_counter()  # repro-lint: disable=R002
    outcomes: List[Optional[JobOutcome]] = [None] * len(specs)
    pending: List[Tuple[int, JobSpec]] = []
    for index, spec in enumerate(specs):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            outcomes[index] = JobOutcome(spec, hit, 0.0, cached=True)
        else:
            pending.append((index, spec))

    fell_back = False
    if pending:
        if jobs > 1 and len(pending) > 1:
            ok = _run_pool(pending, min(jobs, len(pending)), cache,
                           outcomes)
            if not ok:
                fell_back = True
                _run_serial([p for p in pending
                             if outcomes[p[0]] is None], cache, outcomes)
        else:
            _run_serial(pending, cache, outcomes)

    report = RunReport(outcomes=[o for o in outcomes if o is not None],
                       wall_time=time.perf_counter() - start,  # repro-lint: disable=R002
                       jobs=1 if (jobs == 1 or fell_back) else jobs,
                       fell_back_to_serial=fell_back)
    assert len(report.outcomes) == len(specs)
    return report
