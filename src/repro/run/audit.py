"""Durable-state recovery audit: walk, verify, classify, assert.

``repro audit-state [CACHE_DIR]`` (and ``repro check --durability``)
walks every artifact category the runner persists -- cache entries, the
sweep manifest, checkpoints, arenas, triage bundles, the gc journal --
and checks the **durability contract**:

* every artifact's checksum verifies (corrupt-but-recoverable files
  are *warnings*: the owning reader quarantines and recomputes them,
  so nothing is lost);
* the manifest parses and charges each attempt at most once per job
  (duplicate attempt numbers in an attempt log are *violations*);
* checkpoint chains are monotone and honest: the retired count encoded
  in a ``ck-<retired>.ckpt`` file name must match its payload
  (a mismatch is a *violation* -- fallback ordering would lie);
* completed outcomes survive: a ``done`` manifest record whose cache
  entry is missing or corrupt is a *warning* (cache puts are
  best-effort by contract -- the job recomputes on resume, losing no
  results), never silent;
* orphaned ``*.tmp`` files are classified, not ignored: stale ones
  (older than the orphan TTL) are *warnings* and swept on request,
  young ones are *notes* (a live writer may own them).

Severity is the whole point: **violations** are contract breaches that
should never occur, faulted or not -- ``audit_state`` after a disk-
faulted, resumed sweep must report zero.  **Warnings** are the expected
scars of degraded best-effort writes.  **Notes** are informational.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.run import atomicio

#: Severities, in display order.
SEVERITIES = ("violation", "warning", "note")


@dataclass
class AuditFinding:
    """One classified observation about the durable tree."""

    severity: str      # violation | warning | note
    category: str      # cache | manifest | checkpoint | arena |
    #                    triage | gcstate | orphan
    path: str
    message: str

    def format(self) -> str:
        return (f"[{self.severity.upper():<9s}] {self.category:<10s} "
                f"{self.path}: {self.message}")


@dataclass
class AuditReport:
    """Everything one audit pass found, plus coverage counts."""

    cache_dir: Path
    findings: List[AuditFinding] = field(default_factory=list)
    #: Artifacts examined per category (coverage, not defects).
    scanned: Dict[str, int] = field(default_factory=dict)
    swept: int = 0     # stale orphans removed (``--sweep`` only)

    def add(self, severity: str, category: str, path: Union[str, Path],
            message: str) -> None:
        assert severity in SEVERITIES, severity
        self.findings.append(AuditFinding(severity, category,
                                          str(path), message))

    def count(self, category: str, n: int = 1) -> None:
        self.scanned[category] = self.scanned.get(category, 0) + n

    @property
    def violations(self) -> List[AuditFinding]:
        return [f for f in self.findings if f.severity == "violation"]

    @property
    def warnings(self) -> List[AuditFinding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def notes(self) -> List[AuditFinding]:
        return [f for f in self.findings if f.severity == "note"]

    @property
    def ok(self) -> bool:
        """The durability contract holds (warnings/notes allowed)."""
        return not self.violations

    def format_report(self, verbose: bool = False) -> str:
        parts = [f"{self.scanned.get(key, 0)} {key}"
                 for key in sorted(self.scanned)]
        lines = [f"audit-state: {self.cache_dir} "
                 f"({', '.join(parts) if parts else 'empty'})"]
        lines.append(
            f"  {len(self.violations)} violations, "
            f"{len(self.warnings)} warnings, {len(self.notes)} notes" +
            (f", {self.swept} stale orphans swept" if self.swept
             else ""))
        shown = self.findings if verbose else \
            self.violations + self.warnings
        for finding in shown:
            lines.append("  " + finding.format())
        lines.append("durability contract: " +
                     ("OK" if self.ok else "VIOLATED"))
        return "\n".join(lines)


# ------------------------------------------------------------ categories

def _audit_cache_entries(report: AuditReport, cache_dir: Path) -> set:
    """Verify every result entry; returns the valid fingerprints."""
    from repro.run.cache import ResultCache
    valid: set = set()
    for entry in sorted(cache_dir.glob("*.json")):
        if not ResultCache._is_entry(entry):
            continue
        report.count("entries")
        try:
            with open(entry) as fh:
                ResultCache._decode_entry(fh.read())
        except OSError as exc:
            report.add("warning", "cache", entry,
                       f"unreadable ({exc})")
            continue
        except ValueError as exc:
            report.add("warning", "cache", entry,
                       f"corrupt entry ({exc}); the next read "
                       f"quarantines it and the job recomputes")
            continue
        valid.add(entry.stem)
    return valid


def _audit_manifest(report: AuditReport, cache_dir: Path,
                    valid_entries: set) -> None:
    from repro.run.manifest import MANIFEST_NAME, JobRecord
    path = cache_dir / MANIFEST_NAME
    if not path.exists():
        return
    report.count("manifest")
    try:
        with open(path) as fh:
            data = json.load(fh)
        records = [JobRecord.from_dict(entry)
                   for entry in data.get("jobs", [])]
    except (OSError, ValueError, KeyError, TypeError) as exc:
        # The manifest is the critical artifact: it is written
        # atomically and loudly, so a torn one on disk means the
        # contract broke (or someone edited it).
        report.add("violation", "manifest", path,
                   f"unparseable ({type(exc).__name__}: {exc})")
        return
    for record in records:
        attempts_seen: set = set()
        for entry in record.attempt_log:
            number = entry.get("attempt")
            if number in attempts_seen:
                report.add(
                    "violation", "manifest", path,
                    f"job {record.fingerprint[:12]}: attempt "
                    f"{number} charged more than once")
            attempts_seen.add(number)
        offsets = [int(entry.get("start_offset", 0))
                   for entry in sorted(record.attempt_log,
                                       key=lambda e: e["attempt"])]
        if any(offset < 0 for offset in offsets):
            report.add("violation", "manifest", path,
                       f"job {record.fingerprint[:12]}: negative "
                       f"resume offset in attempt log")
        if record.status == "done" and not record.cached \
                and record.fingerprint not in valid_entries:
            report.add(
                "warning", "manifest", path,
                f"job {record.fingerprint[:12]} is done but its cache "
                f"entry is missing or corrupt (best-effort put may "
                f"have degraded; the job recomputes on resume)")


def _audit_checkpoints(report: AuditReport, cache_dir: Path) -> None:
    from repro.run import checkpoint as ckpt
    for directory in ckpt.job_checkpoint_dirs(cache_dir):
        previous = -1
        for path in sorted(directory.glob("ck-*.ckpt")):
            report.count("checkpoints")
            try:
                encoded = int(path.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                report.add("warning", "checkpoint", path,
                           "unparseable file name")
                continue
            try:
                payload = ckpt.CheckpointStore.load_file(path)
            except OSError as exc:
                report.add("warning", "checkpoint", path,
                           f"unreadable ({exc})")
                continue
            except ckpt.CorruptCheckpoint as exc:
                report.add("warning", "checkpoint", path,
                           f"corrupt ({exc}); the loader quarantines "
                           f"it and falls back to the previous one")
                continue
            retired = int(payload.get("retired", -1))
            if retired != encoded:
                report.add(
                    "violation", "checkpoint", path,
                    f"file name encodes {encoded} retired but the "
                    f"payload says {retired} -- newest-wins fallback "
                    f"ordering would lie")
                continue
            if retired <= previous:
                report.add(
                    "violation", "checkpoint", path,
                    f"chain is not monotone ({retired} after "
                    f"{previous})")
            previous = retired


def _audit_arenas(report: AuditReport, cache_dir: Path) -> None:
    from repro.trace import arena as trace_arena
    traces = cache_dir / "traces"
    if not traces.is_dir():
        return
    for path in sorted(traces.glob("*.arena")):
        report.count("arenas")
        try:
            handle = trace_arena._read_arena(path)
        except OSError as exc:
            report.add("warning", "arena", path, f"unreadable ({exc})")
            continue
        except trace_arena.CorruptArena as exc:
            report.add("warning", "arena", path,
                       f"corrupt ({exc}); replay quarantines it and "
                       f"the sweep regenerates")
            continue
        handle.close()


def _audit_triage(report: AuditReport, cache_dir: Path) -> None:
    from repro.run import triage
    for directory in triage.bundle_dirs(cache_dir):
        report.count("triage")
        try:
            triage.load_bundle(directory)
        except OSError as exc:
            report.add("warning", "triage", directory,
                       f"bundle without readable job.json ({exc}); "
                       f"best-effort write may have degraded")
        except ValueError as exc:
            report.add("warning", "triage", directory,
                       f"malformed bundle ({exc})")


def _audit_gc_state(report: AuditReport, cache_dir: Path) -> None:
    from repro.run import gc as run_gc
    path = run_gc.gc_state_path(cache_dir)
    if not path.exists():
        return
    report.count("gcstate")
    try:
        run_gc.read_gc_state(cache_dir)
    except OSError as exc:
        report.add("warning", "gcstate", path, f"unreadable ({exc})")
    except atomicio.FramedReadError as exc:
        report.add("warning", "gcstate", path,
                   f"corrupt journal ({exc}); safe to delete")


def _orphan_directories(cache_dir: Path) -> List[Path]:
    from repro.run import checkpoint as ckpt
    from repro.run import triage
    directories = [cache_dir, cache_dir / "traces"]
    directories.extend(ckpt.job_checkpoint_dirs(cache_dir))
    directories.extend(triage.bundle_dirs(cache_dir))
    return directories


def _audit_orphans(report: AuditReport, cache_dir: Path,
                   now: float, sweep: bool) -> None:
    for directory in _orphan_directories(cache_dir):
        for stray in atomicio.orphan_tmp_files(directory):
            report.count("orphans")
            try:
                age = max(0.0, now - stray.stat().st_mtime)
            except OSError:
                continue
            if age >= atomicio.ORPHAN_TTL:
                if sweep:
                    try:
                        stray.unlink()
                        report.swept += 1
                        continue
                    except OSError:
                        pass
                report.add(
                    "warning", "orphan", stray,
                    f"stale temp file ({age / 3600.0:.1f}h old) from "
                    f"a writer that died mid-write; `repro audit-state "
                    f"--sweep` or `repro gc` removes it")
            else:
                report.add("note", "orphan", stray,
                           f"young temp file ({age:.0f}s); may belong "
                           f"to a live writer -- left alone")


def audit_state(cache_dir: Union[str, Path],
                now: Optional[float] = None,
                sweep: bool = False) -> AuditReport:
    """Audit every durable artifact under ``cache_dir``.

    ``now`` overrides the housekeeping clock (tests); ``sweep=True``
    also removes stale orphaned temp files (never young ones).
    Returns an :class:`AuditReport`; ``report.ok`` is the contract
    verdict (``repro audit-state`` exits non-zero when it is false).
    """
    cache_dir = Path(cache_dir)
    report = AuditReport(cache_dir=cache_dir)
    if now is None:
        now = atomicio.time_now()
    if not cache_dir.is_dir():
        report.add("note", "cache", cache_dir,
                   "no cache directory; nothing to audit")
        return report
    valid_entries = _audit_cache_entries(report, cache_dir)
    _audit_manifest(report, cache_dir, valid_entries)
    _audit_checkpoints(report, cache_dir)
    _audit_arenas(report, cache_dir)
    _audit_triage(report, cache_dir)
    _audit_gc_state(report, cache_dir)
    _audit_orphans(report, cache_dir, now, sweep)
    return report
