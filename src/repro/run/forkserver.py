"""Persistent fork-server worker pool with batched job dispatch.

The original pool paid three per-job taxes that dwarf small simulations:
a fresh ``ProcessPoolExecutor`` per ``run_many`` call (interpreter spawn
plus module imports per worker), one pickle round-trip per job, and full
workload reconstruction -- trace regeneration included -- inside every
worker.  This module removes all three:

* **Persistent pool.**  One executor lives for the whole process
  (module-level, recycled only on breakage/zombie exhaustion or a
  worker-count change), so repeated ``run_many`` calls within a sweep
  reuse warm workers.  Start method preference is ``fork`` >
  ``forkserver`` > ``spawn`` (override with ``REPRO_START_METHOD``):
  forked workers inherit imported modules *and* any trace arenas already
  mapped by the parent as shared read-only pages.
* **Batched dispatch.**  Sweep jobs differ from each other by a handful
  of ``SystemParams`` fields, so a chunk ships one full base job dict
  plus per-job *deltas* (path/value pairs) -- a single small pickle per
  chunk instead of one full spec per job.
* **Explicit fault plan.**  The chunk payload carries the parent's
  ``REPRO_FAULTS`` string, because persistent workers must not trust the
  environment they captured at pool creation time.

Per-job semantics are unchanged from the one-job-per-future path: each
job in a chunk is independently timed, fault-injected and
exception-isolated, and ships back either a result dict or an error
string for the executor's retry machinery.
"""

from __future__ import annotations

import atexit
import os
import time
import warnings
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.run.faults import FAULTS_ENV, plan_from_env
from repro.run.jobs import JobSpec

#: Environment override for the multiprocessing start method.
START_METHOD_ENV = "REPRO_START_METHOD"

_MISSING = object()


def pick_method() -> str:
    """The start method to use: ``fork`` > ``forkserver`` > ``spawn``.

    ``fork`` is preferred where available because workers inherit the
    parent's imported modules and mmap'd arenas for free; ``forkserver``
    still avoids re-importing per job batch; ``spawn`` is the
    lowest-common-denominator fallback.
    """
    import multiprocessing
    available = multiprocessing.get_all_start_methods()
    override = os.environ.get(START_METHOD_ENV, "").strip().lower()
    if override:
        if override in available:
            return override
        warnings.warn(
            f"{START_METHOD_ENV}={override!r} is not available here "
            f"(have {available}); ignoring", RuntimeWarning, stacklevel=2)
    for method in ("fork", "forkserver"):
        if method in available:
            return method
    return "spawn"


# ----------------------------------------------------------- pool lifetime

_pool = None
_pool_jobs = 0


def get_pool(jobs: int):
    """The shared executor with ``jobs`` workers, or ``None`` if process
    pools are unusable here (the caller then falls back to serial).

    The pool persists across calls; it is rebuilt only when the worker
    count changes or after :func:`recycle_pool`.
    """
    global _pool, _pool_jobs
    if _pool is not None and _pool_jobs == jobs:
        return _pool
    recycle_pool()
    try:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor
        context = multiprocessing.get_context(pick_method())
        _pool = ProcessPoolExecutor(max_workers=jobs, mp_context=context)
    except (ImportError, OSError, PermissionError, RuntimeError,
            ValueError):
        _pool = None
        return None
    _pool_jobs = jobs
    return _pool


def recycle_pool() -> None:
    """Discard the shared pool (broken workers, zombie exhaustion).

    The next :func:`get_pool` call builds a fresh one.
    """
    global _pool
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
        _pool = None


atexit.register(recycle_pool)


# ------------------------------------------------------------ delta coding

def flatten(data: Dict[str, Any],
            prefix: Tuple[str, ...] = ()) -> Dict[Tuple[str, ...], Any]:
    """Flatten a nested dict to ``{path-tuple: leaf value}``.

    Only dicts recurse; lists and scalars are leaves.  Job dicts contain
    no empty-dict leaves, so the encoding is lossless for them.
    """
    flat: Dict[Tuple[str, ...], Any] = {}
    for key, value in data.items():
        path = prefix + (key,)
        if isinstance(value, dict):
            flat.update(flatten(value, path))
        else:
            flat[path] = value
    return flat


def unflatten(flat: Dict[Tuple[str, ...], Any]) -> Dict[str, Any]:
    root: Dict[str, Any] = {}
    for path, value in flat.items():
        node = root
        for key in path[:-1]:
            node = node.setdefault(key, {})
        node[path[-1]] = value
    return root


def encode_delta(base_flat: Dict[Tuple[str, ...], Any],
                 job: Dict[str, Any]) -> Dict[str, Any]:
    """Encode ``job`` as a delta against a flattened base job dict."""
    job_flat = flatten(job)
    sets = [(path, value) for path, value in sorted(job_flat.items())
            if base_flat.get(path, _MISSING) != value]
    drops = [path for path in sorted(base_flat) if path not in job_flat]
    return {"set": sets, "drop": drops}


def apply_delta(base_flat: Dict[Tuple[str, ...], Any],
                delta: Dict[str, Any]) -> Dict[str, Any]:
    """Reconstruct a full job dict from the base and one delta."""
    flat = dict(base_flat)
    for path in delta.get("drop", ()):
        flat.pop(tuple(path), None)
    for path, value in delta.get("set", ()):
        flat[tuple(path)] = value
    return unflatten(flat)


def make_batch_payload(base: Dict[str, Any],
                       entries: Sequence[Tuple[Dict[str, Any], int,
                                               Optional[str]]],
                       cache_dir: Optional[str] = None,
                       checkpoint_every: int = 0) -> Dict[str, Any]:
    """Build one chunk payload from ``(job dict, attempt, arena path)``
    triples.  Captures the parent's current fault plan explicitly so
    persistent workers never act on a stale inherited environment.
    ``cache_dir`` (when set) is where workers keep checkpoints and write
    crash-triage bundles; ``checkpoint_every`` is the checkpoint
    interval in retired instructions (0 disables checkpoint writes).
    """
    base_flat = flatten(base)
    return {
        "base": base,
        "jobs": [{"delta": encode_delta(base_flat, job),
                  "attempt": attempt, "arena": arena}
                 for job, attempt, arena in entries],
        "faults": os.environ.get(FAULTS_ENV, ""),
        "cache_dir": cache_dir,
        "checkpoint_every": int(checkpoint_every),
    }


# ------------------------------------------------------------- worker side

def run_entry(spec_dict: Dict[str, Any], attempt: int,
              arena: Optional[str], plan,
              cache_dir: Optional[str],
              checkpoint_every: int) -> Dict[str, Any]:
    """Execute one job dict with full worker semantics; never raises.

    This is the single per-job execution path shared by the fork-server
    pool (:func:`_execute_batch`) and the fabric worker
    (:mod:`repro.run.fabric.worker`): the clock starts before fault
    injection, faults come from the explicit ``plan`` (never the
    worker's inherited environment), checkpoints/triage land under
    ``cache_dir`` when one is given, and any exception -- injected or
    real -- is folded into the returned outcome dict so one bad job
    cannot poison its neighbours or its transport.
    """
    start = time.perf_counter()  # repro-lint: disable=R002
    info: Dict[str, Any] = {}
    try:
        spec = JobSpec.from_dict(spec_dict)
        if plan is not None:
            fingerprint = spec.fingerprint()
            plan.maybe_crash(fingerprint, attempt)
            plan.maybe_hang(fingerprint, attempt)
        workload = _arena_workload(arena)
        if cache_dir:
            from repro.run import checkpoint as ckpt
            store = ckpt.CheckpointStore.for_job(
                cache_dir, spec.fingerprint()) \
                if checkpoint_every > 0 else None
            result, info = ckpt.run_spec(
                spec, workload=workload, store=store,
                every=checkpoint_every, faults=plan, attempt=attempt,
                triage_dir=cache_dir)
        else:
            result = spec.run(workload=workload)
    except Exception as exc:  # noqa: BLE001 -- per-job isolation
        return {
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "elapsed": time.perf_counter() - start,  # repro-lint: disable=R002
            "bundle": getattr(exc, "__triage_bundle__", ""),
            "start_offset": getattr(exc, "__resumed_from__", 0),
        }
    return {
        "ok": True,
        "result": result.to_dict(),
        "elapsed": time.perf_counter() - start,  # repro-lint: disable=R002
        "ckpt_s": float(info.get("ckpt_s", 0.0)),
        "resumed_from": int(info.get("resumed_from", 0)),
    }


def _execute_batch(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Worker entry point: run every job of one chunk independently.

    Mirrors the single-job ``_execute_payload`` semantics per job
    through the shared :func:`run_entry` path: faults come from the
    payload's captured plan (not the worker's environment), and any
    exception -- injected or real -- is isolated to its job's outcome
    so one bad job cannot poison its chunk-mates.
    """
    base_flat = flatten(payload["base"])
    plan = plan_from_env(payload.get("faults", ""))
    cache_dir = payload.get("cache_dir")
    every = int(payload.get("checkpoint_every", 0) or 0)
    return [run_entry(apply_delta(base_flat, entry["delta"]),
                      entry["attempt"], entry.get("arena"), plan,
                      cache_dir, every)
            for entry in payload["jobs"]]


def _arena_workload(path: Optional[str]):
    """Load the chunk's arena reference (memoized per worker process).

    Forked workers find it already in the registry; spawned workers map
    the file on first use (the page cache still shares the bytes).  Any
    defect degrades to ``None`` -- the job reruns its generators.
    """
    if not path:
        return None
    from repro.trace import arena
    return arena.load_cached(path, quarantine=False)
