"""TPC-D Query-6-like DSS trace generator (paper section 2.1.2).

Query 6 scans the largest table of the database, applies arithmetic
predicates to each row, and accumulates a revenue aggregate.  Oracle's
Parallel Query Optimization decomposes the scan into partitions, one per
server process (four processes per processor in the paper).

Published behaviour this generator reproduces:

* compute-intensive kernel with a small, L1-resident instruction footprint
  (0.0% L1I miss rate),
* sequential scan with high spatial locality -- one L1D miss brings a line
  whose remaining rows hit (0.9% L1D miss rate), while the streaming table
  data largely misses in L2 (23.1% L2 local miss rate),
* mid-size working set (sort/aggregation areas) that misses L1 but hits L2,
* negligible locking, and writes (to private aggregation buffers) that can
  overlap under relaxed consistency (paper Figure 3(d)-(g)),
* predictable loop branches (low misprediction rate) and enough independent
  work per row for an IPC of ~2 on the base processor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.trace.codewalk import CodeWalker
from repro.trace.database import (
    BLOCK_BUFFER_BASE,
    PRIVATE_BASE,
    PRIVATE_STRIDE,
    DatabaseLayout,
)
from repro.trace.emitter import SemanticHelpers, SemanticOp, assemble
from repro.trace.instr import OP_LOCK_ACQ, OP_LOCK_REL, OP_MB, OP_SYSCALL, \
    OP_WMB, Instruction

LINE = 64


@dataclass(frozen=True)
class DssParams:
    """Shape of the DSS (Query 6) workload."""

    table_bytes: int = 64 * 1024 * 1024  # scanned table: streams past L2
    row_bytes: int = 8                   # consumed bytes per row, chosen so
                                         # instructions-per-scanned-byte
                                         # matches the paper's miss spacing
    rows_per_batch: int = 48             # rows between bookkeeping work
    compute_per_row: int = 90            # predicate + revenue arithmetic
    fp_fraction: float = 0.35            # revenue math uses FP multiplies
    hot_refs_per_row: int = 110          # row-processing work buffers (L1)
    hot_store_fraction: float = 0.30     # ... stores among the hot refs
    agg_working_set: int = 64 * 1024     # sort/aggregation area: exceeds
                                         # the L1 but sits in the L2, and is
                                         # small enough that scaled runs
                                         # reach steady state during warmup
    agg_accesses_per_row: float = 1.6    # expected accesses per row
    selectivity: float = 0.02            # rows passing the predicate
    code_bytes: int = 24 * 1024          # kernel fits the L1 I-cache
    hard_branch_fraction: float = 0.02
    batches_per_checkpoint: int = 1      # I/O waits between row batches:
                                         # the four server processes per
                                         # CPU interleave, reloading their
                                         # L1 working sets (this is where
                                         # DSS's small L1D miss rate comes
                                         # from -- the misses hit in L2)
    checkpoint_blocks: bool = True

    def scaled(self, factor: int) -> "DssParams":
        """Scale capacity-dependent footprints by ``factor``."""
        import dataclasses
        return dataclasses.replace(
            self,
            table_bytes=max(64 * LINE, self.table_bytes // factor),
            agg_working_set=max(8 * LINE, self.agg_working_set // factor),
            code_bytes=max(16 * LINE, self.code_bytes // factor),
        )


class DssTraceGenerator(SemanticHelpers):
    """Instruction stream of one DSS (parallel query) server process.

    Each process scans its own partition of the table: partitions are
    interleaved across processes at page granularity so the scan is
    sequential per process but the table is shared read-only.
    """

    def __init__(self, pid: int, layout: DatabaseLayout,
                 params: Optional[DssParams] = None, seed: int = 0,
                 n_processes: int = 16):
        self.pid = pid
        self.layout = layout
        self.params = params or DssParams()
        self.n_processes = max(1, n_processes)
        rng = random.Random((seed << 20) ^ (pid * 0x85EBCA77) ^ 0x0D55)
        super().__init__(rng)
        self._walker = CodeWalker(
            base=0x0100_0000, code_bytes=self.params.code_bytes, rng=rng,
            hot_fraction=0.9, hot_routines=8,
            hard_branch_fraction=self.params.hard_branch_fraction,
            avg_routine_lines=4,
            call_target_variability=0.02, jump_target_variability=0.05)
        self.rows_scanned = 0
        self.batches = 0
        self._agg_cursor = 0

    def __iter__(self) -> Iterator[Instruction]:
        return assemble(self._semantics(), self._walker, self._rng,
                        block_instrs=(6, 10))

    # -- semantic stream ---------------------------------------------------

    def _semantics(self) -> Iterator[SemanticOp]:
        p = self.params
        while True:
            yield from self._scan_batch()
            self.batches += 1
            if p.checkpoint_blocks and \
                    self.batches % p.batches_per_checkpoint == 0:
                yield from self._checkpoint()

    def _row_addr(self, row_index: int) -> int:
        """Partitioned scan: process p reads pages p, p+N, p+2N, ..."""
        p = self.params
        rows_per_page = 8192 // p.row_bytes
        page, slot = divmod(row_index, rows_per_page)
        virtual_page = page * self.n_processes + self.pid
        offset = (virtual_page * 8192 + slot * p.row_bytes)
        return BLOCK_BUFFER_BASE + offset % p.table_bytes

    def _scan_batch(self) -> Iterator[SemanticOp]:
        p, rng = self.params, self._rng
        for _ in range(p.rows_per_batch):
            addr = self._row_addr(self.rows_scanned)
            self.rows_scanned += 1

            # Load the row's fields: shipdate, discount, quantity, price.
            # Field loads of one row are independent of each other (only the
            # row pointer feeds them), giving memory parallelism within the
            # spatially-local line.
            field_tags = []
            for field in range(4):
                op, tag = self.load(addr + field * 2)
                yield op
                field_tags.append(tag)

            # Predicate and revenue arithmetic: dependence chains are kept
            # shallow (most ops consume the row's fields directly), so the
            # ILP is locally available -- a modest instruction window
            # already extracts it and bigger windows add little, matching
            # the paper's Figure 3(b) leveling beyond 32 entries.
            chain_tag, chain_depth = None, 0
            for i in range(p.compute_per_row):
                is_fp = rng.random() < p.fp_fraction
                if chain_tag is not None and chain_depth < 3 and \
                        rng.random() < 0.3:
                    srcs = (chain_tag, rng.choice(field_tags))
                    chain_depth += 1
                else:
                    srcs = (rng.choice(field_tags),)
                    chain_depth = 1
                op, chain_tag = self.alu(dep_tags=srcs, fp=is_fp)
                yield op
            tags = [chain_tag if chain_tag is not None else field_tags[-1]]

            # Row-processing work: copies, expression temporaries, and
            # evaluator state on the (L1-resident) private work buffers.
            # This is what makes Oracle's Q6 compute-intensive per row.
            for _ in range(p.hot_refs_per_row):
                off = rng.randrange(self.layout.hot_private_bytes // 8) * 8
                hot_addr = self.layout.hot_private_addr(self.pid, off)
                if rng.random() < p.hot_store_fraction:
                    yield self.store(hot_addr, dep_tags=(tags[-1],))
                else:
                    op, tag = self.load(hot_addr)
                    yield op
                    tags.append(tag)
                    if len(tags) > 5:
                        tags.pop(0)

            # Aggregation-area accesses (hash/sort buckets): miss L1, hit L2.
            # The area lives in the upper half of the process's private
            # window, separate from the generic stack/heap region.
            n_agg = int(p.agg_accesses_per_row) + (
                1 if rng.random() < p.agg_accesses_per_row % 1 else 0)
            for _ in range(n_agg):
                # Sort/merge runs walk the area sequentially; hash-bucket
                # updates hit random slots.  The mix covers the working
                # set quickly (so scaled runs reach steady state) while
                # keeping the random component.
                if rng.random() < 0.5:
                    bucket = self._agg_cursor % p.agg_working_set
                    self._agg_cursor += 64
                else:
                    bucket = rng.randrange(p.agg_working_set // 16) * 16
                agg_addr = (PRIVATE_BASE + self.pid * PRIVATE_STRIDE
                            + PRIVATE_STRIDE // 2 + bucket)
                op, tag = self.load(agg_addr)
                yield op
                upd, utag = self.alu(dep_tags=(tag,), fp=True)
                yield upd
                yield self.store(agg_addr, dep_tags=(utag,))

            # Qualifying rows append to a private result scratch buffer.
            if rng.random() < p.selectivity:
                for s in range(4):
                    off = (self.rows_scanned * 16 + s * 8)
                    yield self.store(self.layout.hot_private_addr(
                        self.pid, off), dep_tags=(tags[-1],))

    def _checkpoint(self) -> Iterator[SemanticOp]:
        """Rare coordination with the query coordinator (negligible
        locking, matching the paper's DSS characterization)."""
        lock = self.layout.lock_addr(self.pid % 4)
        yield self.simple(OP_LOCK_ACQ, addr=lock)
        yield self.simple(OP_MB)
        op, tag = self.load(self.layout.metadata_addr(self.pid * LINE))
        yield op
        upd, utag = self.alu(dep_tags=(tag,))
        yield upd
        yield self.store(self.layout.metadata_addr(self.pid * LINE),
                         dep_tags=(utag,))
        yield self.simple(OP_WMB)
        yield self.simple(OP_LOCK_REL, addr=lock)
        if self.params.checkpoint_blocks:
            yield self.simple(OP_SYSCALL)
