"""Materialized trace arenas: generate once, replay everywhere.

The paper's sweeps (Figs. 2-7) run dozens of system configurations over
the *same* per-workload instruction streams, yet the generator path
regenerates every stream inside every job -- pure redundant work that,
on the process pool, is multiplied by the worker count.  An **arena**
materializes one workload's per-process streams exactly once, packs them
into compact typed arrays (struct-of-arrays, no per-instruction Python
objects at rest), and persists them under ``<trace-dir>/<key>.arena``
with the same sha256-checksum/quarantine discipline as the result cache.
Replay reconstitutes :class:`~repro.trace.instr.Instruction` objects
lazily from a read-only ``mmap`` of the file, so fork-server workers
share the arena pages instead of regenerating or copying them.

How much to materialize is learned, not guessed: per-process consumption
is heavily skewed (a DSS scan process can pull ~5x the uniform share),
so :class:`ArenaRecorder` *records* the streams actually pulled by the
first job of a sweep group while that job runs normally, then extends
each stream by a safety margin and writes the arena.  Sibling
configurations consume nearly identical per-process prefixes; a job that
outruns its recorded stream raises :class:`ArenaExhausted` and the
caller transparently re-runs on the generator path, so results are
byte-identical by construction in every case.

Versioning: :data:`TRACE_VERSION` is **independent** of
``repro.run.jobs.MODEL_VERSION``.  Bump ``TRACE_VERSION`` when the
*trace encoding or workload generation* changes (arenas regenerate);
bump ``MODEL_VERSION`` when *timing-model semantics* change (cached
results invalidate, but existing arenas remain valid -- the instruction
streams they hold are unchanged).

On-disk format::

    MAGIC "RPARENA1"
    u32   header length
    JSON  header {format, trace_version, key, workload, workload_name,
                  n_nodes, processes_per_cpu, seed, total_budget,
                  counts: [per-process instruction counts],
                  checksum: sha256 hex of the body}
    body  struct-of-arrays over all processes, concatenated:
          op[u8] meta[u8] latency[u8] (pad to 8) pc[u64] addr[u64]
          extra[u64]

``meta`` packs ``branch_kind`` (2 bits), ``taken`` (1 bit) and the
dependence count (2 bits); ``extra`` holds the branch target for
branches and up to three u16 backward dependence distances otherwise --
the same losslessness envelope as :mod:`repro.trace.tracefile`.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import warnings
from array import array
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.trace.instr import OP_BRANCH, Instruction

#: Trace-encoding/workload-generation version.  Independent of
#: MODEL_VERSION: a timing-model change keeps every arena valid.
TRACE_VERSION = 1

MAGIC = b"RPARENA1"

#: Subdirectory (inside the trace dir) holding corrupt arenas.
QUARANTINE_DIR = "quarantine"

#: Environment override for the arena directory.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

_FORMAT = 1


class ArenaError(Exception):
    """Base class: the arena cannot serve this replay request."""


class ArenaExhausted(ArenaError):
    """A process consumed its whole materialized stream mid-simulation."""


class ArenaMismatch(ArenaError):
    """The arena was built for a different machine shape or seed."""


class CorruptArena(ArenaError):
    """The arena file failed checksum or structural validation."""


class ArenaWriteError(ArenaError):
    """The instruction stream cannot be represented in the arena format."""


# --------------------------------------------------------------------- keys

def arena_key(workload: Dict[str, object], n_nodes: int, seed: int,
              total_budget: int) -> str:
    """Stable content key for one materialized workload.

    ``total_budget`` is the run size (instructions + warmup) the arena
    must be able to feed; sweeps over system parameters share sizes, so
    every configuration of one sweep maps to the same arena.  The key
    folds in :data:`TRACE_VERSION`, *not* ``MODEL_VERSION``: timing
    model changes do not invalidate materialized streams.
    """
    payload = {
        "trace_version": TRACE_VERSION,
        "workload": workload,
        "n_nodes": int(n_nodes),
        "seed": int(seed),
        "total_budget": int(total_budget),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def default_trace_dir() -> Optional[str]:
    """The arena directory from the environment, or ``None``."""
    return os.environ.get(TRACE_DIR_ENV) or None


# ------------------------------------------------------------------ packing

def _pack_streams(streams: Sequence[Sequence[Instruction]]):
    """Pack per-process instruction lists into struct-of-arrays.

    Raises :class:`ArenaWriteError` when an instruction falls outside
    the format's envelope (more than 3 dependences, a distance beyond
    u16, or a latency beyond u8) -- callers then simply skip the arena.
    """
    ops = bytearray()
    metas = bytearray()
    lats = bytearray()
    pcs = array("Q")
    addrs = array("Q")
    extras = array("Q")
    counts: List[int] = []
    for stream in streams:
        counts.append(len(stream))
        for ins in stream:
            if ins.op == OP_BRANCH:
                meta = (ins.branch_kind & 3) | (4 if ins.taken else 0)
                extra = ins.target
            else:
                deps = tuple(ins.deps)
                if len(deps) > 3:
                    raise ArenaWriteError(
                        f"instruction has {len(deps)} dependences "
                        f"(format holds 3)")
                extra = 0
                for i, d in enumerate(deps):
                    if not 0 <= d <= 0xFFFF:
                        raise ArenaWriteError(
                            f"dependence distance {d} beyond u16")
                    extra |= d << (16 * i)
                meta = len(deps) << 3
            if not 0 <= ins.latency <= 0xFF:
                raise ArenaWriteError(
                    f"latency {ins.latency} beyond u8")
            ops.append(ins.op)
            metas.append(meta)
            lats.append(ins.latency)
            pcs.append(ins.pc)
            addrs.append(ins.addr)
            extras.append(extra)
    total = len(ops)
    pad = (-3 * total) % 8
    body = b"".join((bytes(ops), bytes(metas), bytes(lats), b"\x00" * pad,
                     pcs.tobytes(), addrs.tobytes(), extras.tobytes()))
    return counts, body


def write_arena(path: Union[str, Path],
                streams: Sequence[Sequence[Instruction]],
                meta: Dict[str, object]) -> bool:
    """Atomically persist packed ``streams`` plus header ``meta``.

    Best-effort like the result cache: storage faults degrade to a
    :class:`RuntimeWarning` and ``False`` -- the sweep continues on the
    generator path.
    """
    path = Path(path)
    try:
        counts, body = _pack_streams(streams)
    except ArenaWriteError as exc:
        warnings.warn(f"arena not materialized: {exc}", RuntimeWarning,
                      stacklevel=2)
        return False
    header = dict(meta)
    header["format"] = _FORMAT
    header["trace_version"] = TRACE_VERSION
    header["counts"] = counts
    header["checksum"] = hashlib.sha256(body).hexdigest()
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    blob = b"".join((MAGIC, len(header_bytes).to_bytes(4, "little"),
                     header_bytes, body))
    # Deferred import: repro.run.checkpoint imports this module, so a
    # top-level import of the repro.run package would be circular.
    from repro.run import atomicio
    atomicio.sweep_orphans(path.parent)
    if not atomicio.atomic_write_bytes(path, blob, category="arena"):
        warnings.warn(
            f"arena write failed for {path.name}; continuing without it",
            RuntimeWarning, stacklevel=2)
        return False
    return True


# ------------------------------------------------------------------- replay

class TraceArena:
    """A loaded arena: zero-copy views over a read-only file mapping.

    Duck-types :class:`~repro.core.workloads.Workload` (``name`` +
    ``generators``), so ``run_simulation`` replays it unchanged.  The
    per-process iterators reconstitute :class:`Instruction` objects
    lazily from the mapped arrays; running one dry raises
    :class:`ArenaExhausted`, which callers turn into a generator-path
    re-run.
    """

    def __init__(self, path: Path, header: Dict[str, object],
                 buffer, mapping=None):
        self.path = path
        self.header = header
        self.name: str = header["workload_name"]
        self.n_nodes: int = int(header["n_nodes"])
        self.seed: int = int(header["seed"])
        self.counts: List[int] = [int(n) for n in header["counts"]]
        self._mapping = mapping          # keeps the mmap alive
        total = sum(self.counts)
        view = memoryview(buffer)
        pad = (-3 * total) % 8
        off = 0
        self._op = view[off:off + total]
        off += total
        self._meta = view[off:off + total]
        off += total
        self._lat = view[off:off + total]
        off += total + pad
        self._pc = view[off:off + 8 * total].cast("Q")
        off += 8 * total
        self._addr = view[off:off + 8 * total].cast("Q")
        off += 8 * total
        self._extra = view[off:off + 8 * total].cast("Q")
        starts = []
        pos = 0
        for n in self.counts:
            starts.append(pos)
            pos += n
        self._starts = starts

    # -- Workload protocol -------------------------------------------------

    def generators(self, n_cpus: int, seed: int = 0,
                   skips: Optional[Sequence[int]] = None) -> List[Iterator]:
        """Replay iterators for every process, validated against the
        arena's recorded machine shape.  ``skips`` (one entry per
        process) starts each stream that many instructions in -- an O(1)
        seek used by checkpoint restore (repro.run.checkpoint)."""
        if n_cpus != self.n_nodes or seed != self.seed:
            raise ArenaMismatch(
                f"arena {self.path.name} was materialized for "
                f"n_nodes={self.n_nodes} seed={self.seed}, requested "
                f"n_nodes={n_cpus} seed={seed}")
        if skips is None:
            skips = [0] * len(self.counts)
        if len(skips) != len(self.counts):
            raise ArenaMismatch(
                f"arena {self.path.name} holds {len(self.counts)} "
                f"streams, got {len(skips)} skip offsets")
        return [self.replay(pid, skip=skip)
                for pid, skip in enumerate(skips)]

    def replay(self, pid: int, skip: int = 0) -> "ArenaStream":
        """Lazy instruction stream of one process, starting ``skip``
        instructions in (index arithmetic -- no decode of the prefix)."""
        return ArenaStream(self, pid, skip)

    @property
    def total_instructions(self) -> int:
        return sum(self.counts)

    def close(self) -> None:
        for view in (self._pc, self._addr, self._extra, self._op,
                     self._meta, self._lat):
            view.release()
        if self._mapping is not None:
            self._mapping.close()
            self._mapping = None


class ArenaStream:
    """One process's lazy instruction iterator over an arena.

    Behaves exactly like the closure generator it replaced -- same
    decode, and :class:`ArenaExhausted` once at the end of the
    materialized stream (plain ``StopIteration`` on any draw after
    that, matching a dead generator frame) -- while exposing its
    position and the underlying struct-of-arrays views, so the batch
    backend's round planner can classify upcoming instructions
    zero-copy, without decoding or consuming them.

    Index bookkeeping: a core's sequence number ``s`` (counted from
    process start, surviving checkpoint restore because restores re-seek
    by instructions consumed) lives at absolute arena index
    ``base + s``.
    """

    __slots__ = ("arena", "pid", "pos", "end", "base")

    def __init__(self, arena: TraceArena, pid: int, skip: int):
        self.arena = arena
        self.pid = pid
        self.base = arena._starts[pid]
        self.pos = self.base + skip
        self.end = self.base + arena.counts[pid]

    def __iter__(self) -> "ArenaStream":
        return self

    def __next__(self) -> Instruction:
        i = self.pos
        if i >= self.end:
            if i > self.end:
                raise StopIteration
            self.pos = i + 1
            arena = self.arena
            raise ArenaExhausted(
                f"process {self.pid} consumed all "
                f"{self.end - self.base} materialized "
                f"instructions of {arena.path.name}; re-running on the "
                f"generator path")
        arena = self.arena
        o = arena._op[i]
        if o == OP_BRANCH:
            m = arena._meta[i]
            ins = Instruction(o, arena._pc[i], addr=arena._addr[i],
                              latency=arena._lat[i], taken=bool(m & 4),
                              target=arena._extra[i], branch_kind=m & 3)
        else:
            nd = arena._meta[i] >> 3
            if nd:
                e = arena._extra[i]
                if nd == 1:
                    deps = (e & 0xFFFF,)
                elif nd == 2:
                    deps = (e & 0xFFFF, (e >> 16) & 0xFFFF)
                else:
                    deps = (e & 0xFFFF, (e >> 16) & 0xFFFF,
                            (e >> 32) & 0xFFFF)
            else:
                deps = ()
            ins = Instruction(o, arena._pc[i], addr=arena._addr[i],
                              deps=deps, latency=arena._lat[i])
        self.pos = i + 1
        return ins


# ------------------------------------------------------------------ loading

def _read_arena(path: Path) -> TraceArena:
    """Open, validate and map one arena file (raises on any defect)."""
    with open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise CorruptArena(f"bad magic {magic!r}")
        raw_len = fh.read(4)
        if len(raw_len) != 4:
            raise CorruptArena("truncated header length")
        header_len = int.from_bytes(raw_len, "little")
        if header_len <= 0 or header_len > 1 << 24:
            raise CorruptArena(f"implausible header length {header_len}")
        header_bytes = fh.read(header_len)
        if len(header_bytes) != header_len:
            raise CorruptArena("truncated header")
        try:
            header = json.loads(header_bytes)
        except ValueError as exc:
            raise CorruptArena(f"unparseable header: {exc}") from exc
        if header.get("format") != _FORMAT or \
                header.get("trace_version") != TRACE_VERSION:
            raise CorruptArena(
                f"format/trace-version mismatch "
                f"(format={header.get('format')}, "
                f"trace_version={header.get('trace_version')})")
        body_offset = len(MAGIC) + 4 + header_len
        try:
            total = sum(int(n) for n in header["counts"])
            expected = 3 * total + ((-3 * total) % 8) + 24 * total
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptArena(f"malformed header: {exc}") from exc
        size = os.fstat(fh.fileno()).st_size
        if size - body_offset != expected:
            raise CorruptArena(
                f"body is {size - body_offset} bytes, expected {expected}")
        try:
            mapping = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError):
            mapping = None
        if mapping is not None:
            body = memoryview(mapping)[body_offset:]
        else:                                        # pragma: no cover
            fh.seek(body_offset)
            body = fh.read()
        digest = hashlib.sha256(body).hexdigest()
        if digest != header.get("checksum"):
            if mapping is not None:
                if isinstance(body, memoryview):
                    body.release()
                mapping.close()
            raise CorruptArena(
                f"checksum mismatch (stored "
                f"{str(header.get('checksum'))[:12]}..., computed "
                f"{digest[:12]}...)")
        return TraceArena(path, header, body, mapping=mapping)


#: Process-wide registry of loaded arenas, keyed by absolute path.
#: Fork-server workers inherit loaded arenas; spawn workers (and arenas
#: materialized after the pool started) map the file on first use --
#: the page cache still shares the bytes across processes.
_REGISTRY: Dict[str, TraceArena] = {}


def load_cached(path: Union[str, Path],
                quarantine: bool = True) -> Optional[TraceArena]:
    """The arena at ``path``, memoized per process; ``None`` on any
    defect.  With ``quarantine`` (the parent side), a corrupt file is
    moved to ``quarantine/`` beside the arenas -- never silently
    overwritten -- so the sweep regenerates a clean one; workers pass
    ``quarantine=False`` and just fall back to the generator path.
    """
    path = Path(path)
    key = str(path.resolve()) if path.exists() else str(path)
    cached = _REGISTRY.get(key)
    if cached is not None:
        return cached
    try:
        arena = _read_arena(path)
    except OSError:
        return None
    except CorruptArena as exc:
        if quarantine:
            _quarantine(path, str(exc))
        return None
    _REGISTRY[key] = arena
    return arena


def _quarantine(path: Path, reason: str) -> None:
    from repro.run import atomicio
    atomicio.quarantine(path, reason, label="arena",
                        quarantine_dir=path.parent / QUARANTINE_DIR,
                        stacklevel=4)


def forget(path: Union[str, Path]) -> None:
    """Drop a registry entry (tests and regeneration paths)."""
    path = Path(path)
    for key in (str(path), str(path.resolve()) if path.exists()
                else str(path)):
        arena = _REGISTRY.pop(key, None)
        if arena is not None:
            arena.close()


def registry_size() -> int:
    return len(_REGISTRY)


# ---------------------------------------------------------------- recording

class _RecordingWorkload:
    """Drop-in workload whose streams are teed into per-process lists."""

    def __init__(self, workload, recorder: "ArenaRecorder"):
        self._workload = workload
        self._recorder = recorder
        self.name = workload.name
        self.processes_per_cpu = workload.processes_per_cpu

    def generators(self, n_cpus: int, seed: int = 0) -> List[Iterator]:
        sources = [iter(g)
                   for g in self._workload.generators(n_cpus, seed=seed)]
        records: List[List[Instruction]] = [[] for _ in sources]
        self._recorder._captured(sources, records)
        return [self._tee(src, rec.append)
                for src, rec in zip(sources, records)]

    @staticmethod
    def _tee(source: Iterator, sink) -> Iterator[Instruction]:
        for ins in source:
            sink(ins)
            yield ins


class ArenaRecorder:
    """Materialize an arena from the first job of a sweep group.

    ``workload()`` hands out a fresh recording wrapper per attempt (so
    retries restart from identically-seeded generators); after the
    attempt succeeds, :meth:`write` extends every recorded stream by a
    safety margin -- sibling configurations consume slightly different
    per-process prefixes -- and persists the arena.
    """

    #: Extra stream depth beyond the recorded consumption: half again
    #: plus a flat floor, absorbing scheduling drift between the
    #: recording configuration and its sweep siblings.
    MARGIN_FLOOR = 512

    def __init__(self, workload, n_nodes: int, seed: int,
                 workload_dict: Dict[str, object], total_budget: int):
        self._workload = workload
        self.n_nodes = int(n_nodes)
        self.seed = int(seed)
        self.workload_dict = workload_dict
        self.total_budget = int(total_budget)
        self._sources: Optional[List[Iterator]] = None
        self._records: Optional[List[List[Instruction]]] = None

    def workload(self) -> _RecordingWorkload:
        return _RecordingWorkload(self._workload, self)

    def _captured(self, sources, records) -> None:
        self._sources = sources
        self._records = records

    def key(self) -> str:
        return arena_key(self.workload_dict, self.n_nodes, self.seed,
                         self.total_budget)

    def write(self, path: Union[str, Path]) -> bool:
        """Extend the recorded streams by the margin and persist them."""
        if not self._records or self._sources is None:
            return False
        for source, record in zip(self._sources, self._records):
            margin = max(self.MARGIN_FLOOR, len(record) // 2)
            for _ in range(margin):
                record.append(next(source))
        meta = {
            "key": self.key(),
            "workload": self.workload_dict,
            "workload_name": self._workload.name,
            "n_nodes": self.n_nodes,
            "processes_per_cpu": self._workload.processes_per_cpu,
            "seed": self.seed,
            "total_budget": self.total_budget,
        }
        ok = write_arena(path, self._records, meta)
        self._sources = None
        self._records = None
        return ok
