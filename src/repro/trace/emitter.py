"""Assembly of semantic micro-op streams into full instruction traces.

Workload generators describe *what* a process does (loads/stores to the
database regions, ALU work, locking, commits) as a stream of
:class:`SemanticOp` records with symbolic dependence *tags*.  The assembler
then merges that stream with the instruction-fetch behaviour from a
:class:`~repro.trace.codewalk.CodeWalker` -- assigning PCs, inserting the
branch instructions that terminate basic blocks, and resolving dependence
tags into backward dynamic distances.

Separating semantics from assembly keeps dependence bookkeeping correct:
inserted branches shift dynamic distances, which the assembler accounts for
because tags are resolved only at final emission.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Iterator, Optional, Sequence, Tuple

from repro.trace.codewalk import CodeWalker
from repro.trace.instr import (
    OP_BRANCH,
    OP_FP,
    OP_INT,
    Instruction,
)

#: Dependences further back than this are dropped: the producer is
#: guaranteed complete before the consumer can possibly enter the window.
MAX_DEP_DISTANCE = 192


class SemanticOp:
    """One micro-op emitted by a workload generator, pre-assembly."""

    __slots__ = ("op", "addr", "dep_tags", "latency", "tag", "fixed_pc")

    def __init__(self, op: int, addr: int = 0,
                 dep_tags: Sequence[int] = (), latency: int = 1,
                 tag: Optional[int] = None, fixed_pc: Optional[int] = None):
        self.op = op
        self.addr = addr
        self.dep_tags = dep_tags
        self.latency = latency
        self.tag = tag
        self.fixed_pc = fixed_pc


class TagAllocator:
    """Monotonic producer tags used to express dependences symbolically."""

    def __init__(self) -> None:
        self._next = 0

    def new(self) -> int:
        tag = self._next
        self._next += 1
        return tag


def assemble(semantics: Iterator[SemanticOp], walker: CodeWalker,
             rng: random.Random,
             block_instrs: Tuple[int, int] = (4, 7)) -> Iterator[Instruction]:
    """Merge a semantic stream with the code walk into Instructions.

    Every ``block_instrs``-sized run of sequential PCs is terminated by a
    branch instruction taken from the walker, reproducing the basic-block
    structure (and therefore the branch frequency and instruction-fetch
    streaming behaviour) of the workload.
    """
    lo, hi = block_instrs
    tag_pos: "OrderedDict[int, int]" = OrderedDict()
    index = 0
    # Block boundaries are deterministic in the starting PC so branch
    # sites are stable static locations (predictors can learn them).
    remaining = walker.block_len_at(walker.pc, lo, hi)

    def record(tag: Optional[int]) -> None:
        if tag is None:
            return
        tag_pos[tag] = index
        if len(tag_pos) > 4 * MAX_DEP_DISTANCE:
            for _ in range(MAX_DEP_DISTANCE):
                tag_pos.popitem(last=False)

    for sop in semantics:
        if sop.fixed_pc is None and remaining <= 0:
            desc = walker.end_block()
            yield Instruction(OP_BRANCH, desc.pc, taken=desc.taken,
                              target=desc.target, branch_kind=desc.kind)
            index += 1
            remaining = walker.block_len_at(walker.pc, lo, hi)

        if sop.fixed_pc is not None:
            pc = sop.fixed_pc
        else:
            pc = walker.block(1)[0]
            remaining -= 1

        deps = []
        for tag in sop.dep_tags:
            pos = tag_pos.get(tag)
            if pos is not None:
                distance = index - pos
                if 0 < distance <= MAX_DEP_DISTANCE:
                    deps.append(distance)
        record(sop.tag)
        yield Instruction(sop.op, pc, addr=sop.addr, deps=tuple(deps),
                          latency=sop.latency)
        index += 1


class SemanticHelpers:
    """Mixin with emit helpers shared by the workload generators."""

    def __init__(self, rng: random.Random):
        self._rng = rng
        self._tags = TagAllocator()

    def alu(self, dep_tags: Sequence[int] = (), fp: bool = False,
            fixed_pc: Optional[int] = None) -> Tuple[SemanticOp, int]:
        """An ALU op producing a new value; returns (op, result tag)."""
        tag = self._tags.new()
        op = SemanticOp(OP_FP if fp else OP_INT, dep_tags=dep_tags,
                        latency=3 if fp else 1, tag=tag, fixed_pc=fixed_pc)
        return op, tag

    def load(self, addr: int, dep_tags: Sequence[int] = (),
             fixed_pc: Optional[int] = None) -> Tuple[SemanticOp, int]:
        """A load producing a value; returns (op, result tag)."""
        from repro.trace.instr import OP_LOAD
        tag = self._tags.new()
        op = SemanticOp(OP_LOAD, addr=addr, dep_tags=dep_tags, tag=tag,
                        fixed_pc=fixed_pc)
        return op, tag

    def store(self, addr: int, dep_tags: Sequence[int] = (),
              fixed_pc: Optional[int] = None) -> SemanticOp:
        from repro.trace.instr import OP_STORE
        return SemanticOp(OP_STORE, addr=addr, dep_tags=dep_tags,
                          fixed_pc=fixed_pc)

    def simple(self, op_kind: int, addr: int = 0,
               fixed_pc: Optional[int] = None,
               dep_tags: Sequence[int] = ()) -> SemanticOp:
        """A non-producing op (locks, fences, syscalls, hints)."""
        return SemanticOp(op_kind, addr=addr, dep_tags=dep_tags,
                          fixed_pc=fixed_pc)

    def tagged(self, op_kind: int, addr: int = 0,
               fixed_pc: Optional[int] = None
               ) -> Tuple[SemanticOp, int]:
        """A non-ALU op that later ops can order themselves after (e.g. a
        lock acquire that a critical section's prefetch must follow)."""
        tag = self._tags.new()
        op = SemanticOp(op_kind, addr=addr, tag=tag, fixed_pc=fixed_pc)
        return op, tag
