"""Shared virtual address-space layout for the simulated database engine.

Oracle processes communicate through a shared-memory System Global Area
(SGA) consisting of a *block buffer* (an in-memory cache of database disk
blocks) and a *metadata* area (directory information, latches/locks, and the
fine-grained shared structures whose updates migrate between processors --
paper sections 2.1 and 4.2).  Server processes additionally have private
stacks and heaps, and the log writer appends to a redo-log region.

All generators for one simulated machine share a single
:class:`DatabaseLayout`, so accesses from different processes land on the
same lines and produce genuine coherence traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

LINE = 64  # bytes; matches the Figure 1 cache line size

# Region bases, chosen far apart so regions never overlap even unscaled.
CODE_BASE = 0x0100_0000
BLOCK_BUFFER_BASE = 0x0400_0000
METADATA_BASE = 0x1000_0000
LOCK_BASE = 0x1400_0000
HISTORY_BASE = 0x1800_0000
LOG_BASE = 0x1C00_0000
PRIVATE_BASE = 0x4000_0000
PRIVATE_STRIDE = 0x0100_0000  # per-process private window


@dataclass
class MigratoryHints:
    """Software-optimization switches for migratory data (paper section 4.2).

    ``prefetch``
        Insert an exclusive prefetch for the migratory lines a critical
        section will touch, right after lock acquisition.
    ``flush``
        Insert a flush / WriteThrough hint for the dirty migratory lines at
        the end of the critical section (keeps a clean copy cached).
    ``pc_filter``
        When not ``None``, only critical sections whose access PCs intersect
        this set receive hints -- this models the paper's profile-guided
        instrumentation of the ~100 hot migratory instructions.
    """

    prefetch: bool = False
    flush: bool = False
    pc_filter: Optional[Set[int]] = None

    def applies_to(self, pcs) -> bool:
        """Whether a critical section touching ``pcs`` gets hints."""
        if not (self.prefetch or self.flush):
            return False
        if self.pc_filter is None:
            return True
        return any(pc in self.pc_filter for pc in pcs)


@dataclass
class DatabaseLayout:
    """Sizes and bases of every shared region, in bytes.

    The defaults model the paper's scaled-down OLTP database (section 2.3:
    40 branches, >900MB SGA, >100MB metadata) after applying the simulation
    capacity scale used by :func:`repro.params.default_system`.
    """

    code_bytes: int = 560 * 1024          # OLTP instruction working set
    block_buffer_bytes: int = 512 * 1024
    metadata_bytes: int = 256 * 1024
    hot_metadata_bytes: int = 64 * 1024   # frequently-walked directory part
    n_locks: int = 256
    migratory_lines: int = 4096           # metadata lines with migratory use
    hot_migratory_lines: int = 256        # small hot subset (paper: ~520 of
                                          # ~17K lines take 70% of refs)
    history_bytes: int = 128 * 1024
    log_bytes_per_process: int = 64 * 1024
    private_bytes: int = 64 * 1024        # per-process stack+heap window
    hot_private_bytes: int = 16 * 1024    # mostly L1-resident private hot set

    def scaled(self, factor: int) -> "DatabaseLayout":
        """Divide all footprints by ``factor`` (cache sizes scale alike)."""
        def div(x, lo):
            return max(lo, x // factor)
        # Code scales by a quarter of the capacity factor: scaled
        # transactions execute far fewer instructions, so preserving the
        # paper's per-reference L1I miss rate (its instruction-stall
        # behaviour) needs a relatively larger code footprint.
        return DatabaseLayout(
            code_bytes=div(self.code_bytes * 4, 4 * LINE),
            block_buffer_bytes=div(self.block_buffer_bytes, 16 * LINE),
            metadata_bytes=div(self.metadata_bytes, 16 * LINE),
            hot_metadata_bytes=div(self.hot_metadata_bytes, 8 * LINE),
            n_locks=self.n_locks,
            migratory_lines=max(8, self.migratory_lines // factor),
            hot_migratory_lines=max(4, self.hot_migratory_lines // factor),
            history_bytes=div(self.history_bytes, 16 * LINE),
            log_bytes_per_process=div(self.log_bytes_per_process, 4 * LINE),
            private_bytes=div(self.private_bytes, 16 * LINE),
            hot_private_bytes=div(self.hot_private_bytes, 4 * LINE),
        )

    # ---- address helpers -------------------------------------------------

    @staticmethod
    def _striped(base: int, offset: int, span: int,
                 chunk: int = 1024, ways: int = 8,
                 page: int = 8192) -> int:
        """Stripe a small region across ``ways`` pages.

        The real SGA metadata spans thousands of pages, so bin-hopping
        spreads its lines across all home nodes.  Scaled-down regions
        would otherwise collapse onto one or two pages and serialize at a
        single directory/memory bank; striping restores the paper's home
        distribution.
        """
        offset %= span
        block, within = divmod(offset, chunk)
        way = block % ways
        segment = block // ways
        return base + way * page + segment * chunk + within

    def code_addr(self, offset: int) -> int:
        return CODE_BASE + offset % self.code_bytes

    def block_buffer_addr(self, offset: int) -> int:
        """Read-mostly half of the block buffer (scans, lookups)."""
        return BLOCK_BUFFER_BASE + offset % (self.block_buffer_bytes // 2)

    def account_block_addr(self, account: int, offset: int = 0) -> int:
        """Block holding an account row (updated in place, so these lines
        migrate between the processes that touch the same block)."""
        half = self.block_buffer_bytes // 2
        block = (account * 2048) % half
        return BLOCK_BUFFER_BASE + half + block + offset

    def metadata_addr(self, offset: int) -> int:
        """Generic (read-mostly) metadata: a separate striped window above
        the migratory structures, so directory walks do not perturb
        migratory sharing."""
        span = max(LINE, self.metadata_bytes
                   - self.migratory_lines * LINE)
        return self._striped(METADATA_BASE + 0x0100_0000, offset, span)

    def hot_metadata_addr(self, offset: int) -> int:
        """The frequently-walked directory portion of the metadata area."""
        return self._striped(METADATA_BASE + 0x0100_0000, offset,
                             self.hot_metadata_bytes)

    def lock_addr(self, lock_id: int) -> int:
        """Each lock sits on its own cache line (tuned engines pad locks),
        and locks spread across pages/home nodes like real latch arrays."""
        return self._striped(LOCK_BASE, (lock_id % self.n_locks) * LINE,
                             self.n_locks * LINE, chunk=LINE)

    def migratory_addr(self, line_id: int, offset: int = 0) -> int:
        """Address within the migratory metadata structure ``line_id``."""
        return self._striped(
            METADATA_BASE,
            (line_id % self.migratory_lines) * LINE + offset % LINE,
            self.migratory_lines * LINE, chunk=LINE)

    def history_addr(self, offset: int) -> int:
        return HISTORY_BASE + offset % self.history_bytes

    def log_addr(self, pid: int, offset: int) -> int:
        return (LOG_BASE + pid * self.log_bytes_per_process
                + offset % self.log_bytes_per_process)

    def private_addr(self, pid: int, offset: int) -> int:
        return PRIVATE_BASE + pid * PRIVATE_STRIDE + offset % self.private_bytes

    def hot_private_addr(self, pid: int, offset: int) -> int:
        return PRIVATE_BASE + pid * PRIVATE_STRIDE + offset % self.hot_private_bytes
