"""Synthetic workload trace generation.

The paper drives its simulator with ATOM-captured traces of Oracle 7.3.2
server processes running TPC-B (OLTP) and TPC-D Query 6 (DSS).  Oracle and
the traces are proprietary, so this package regenerates statistically
equivalent per-process instruction streams:

* :mod:`repro.trace.instr` -- the instruction record format.
* :mod:`repro.trace.database` -- the shared address-space layout (SGA block
  buffer, metadata/locks, code, logs, per-process private regions).
* :mod:`repro.trace.codewalk` -- instruction-fetch behaviour (streaming
  I-references, branch structure).
* :mod:`repro.trace.oltp` -- TPC-B-like transaction streams.
* :mod:`repro.trace.dss` -- TPC-D-Q6-like parallel scan streams.
"""

from repro.trace.instr import (
    OP_BRANCH,
    OP_FLUSH,
    OP_FP,
    OP_INT,
    OP_LOAD,
    OP_LOCK_ACQ,
    OP_LOCK_REL,
    OP_MB,
    OP_PREFETCH,
    OP_STORE,
    OP_SYSCALL,
    OP_WMB,
    Instruction,
)
from repro.trace.database import DatabaseLayout, MigratoryHints
from repro.trace.oltp import OltpParams, OltpTraceGenerator
from repro.trace.dss import DssParams, DssTraceGenerator

__all__ = [
    "Instruction",
    "OP_INT", "OP_FP", "OP_LOAD", "OP_STORE", "OP_BRANCH", "OP_SYSCALL",
    "OP_LOCK_ACQ", "OP_LOCK_REL", "OP_MB", "OP_WMB", "OP_PREFETCH", "OP_FLUSH",
    "DatabaseLayout", "MigratoryHints",
    "OltpParams", "OltpTraceGenerator",
    "DssParams", "DssTraceGenerator",
]
