"""TPC-C-like OLTP trace generator (validation of the paper's claim).

The paper uses TPC-B rather than TPC-C, arguing (section 2.1.1) that
"our performance monitoring experiments with TPC-B and TPC-C show
similar processor and memory system behavior, with TPC-B exhibiting
somewhat worse memory system behavior than TPC-C".

This generator models the TPC-C transaction mix so the claim can be
tested on the simulated system.  It reuses the TPC-B building blocks
(index walks, block updates, lock-protected migratory metadata updates,
history/log writes) and varies their composition per transaction type:

===============  =====  =======================================
transaction      share  shape
===============  =====  =======================================
new-order         45%   5-15 order lines, several block updates,
                        district sequence under a lock (migratory)
payment           43%   like a TPC-B transaction (warehouse +
                        district balances under locks)
order-status       4%   read-only index walks + block reads
delivery           4%   batch of 10 order updates
stock-level        4%   read-heavy scan over recent stock rows
===============  =====  =======================================

TPC-C's larger share of read-only / read-heavy work and longer
transactions slightly *reduce* communication misses per instruction
relative to TPC-B -- the "somewhat worse" direction the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.trace.database import DatabaseLayout, MigratoryHints
from repro.trace.instr import OP_SYSCALL, OP_WMB
from repro.trace.oltp import OltpParams, OltpTraceGenerator
from repro.trace.emitter import SemanticOp

LINE = 64


@dataclass(frozen=True)
class TpccParams:
    """TPC-C transaction-mix shape on top of the TPC-B engine blocks."""

    n_warehouses: int = 10
    n_districts_per_warehouse: int = 10
    p_new_order: float = 0.45
    p_payment: float = 0.43
    p_order_status: float = 0.04
    p_delivery: float = 0.04
    # remainder: stock-level
    min_order_lines: int = 5
    max_order_lines: int = 15
    stock_scan_rows: int = 40

    def scaled(self, factor: int) -> "TpccParams":
        return self


class TpccTraceGenerator(OltpTraceGenerator):
    """Instruction stream of one TPC-C-like server process.

    Reuses the engine-block emitters of :class:`OltpTraceGenerator`; only
    the transaction composition differs.
    """

    def __init__(self, pid: int, layout: DatabaseLayout,
                 params: Optional[OltpParams] = None,
                 tpcc: Optional[TpccParams] = None, seed: int = 0,
                 hints: Optional[MigratoryHints] = None):
        super().__init__(pid, layout, params, seed=seed, hints=hints)
        self.tpcc = tpcc or TpccParams()
        self.tx_counts = {"new_order": 0, "payment": 0,
                          "order_status": 0, "delivery": 0,
                          "stock_level": 0}

    def _transaction(self) -> Iterator[SemanticOp]:
        t = self.tpcc
        roll = self._rng.random()
        if roll < t.p_new_order:
            kind = "new_order"
        elif roll < t.p_new_order + t.p_payment:
            kind = "payment"
        elif roll < t.p_new_order + t.p_payment + t.p_order_status:
            kind = "order_status"
        elif roll < (t.p_new_order + t.p_payment + t.p_order_status
                     + t.p_delivery):
            kind = "delivery"
        else:
            kind = "stock_level"
        self.tx_counts[kind] += 1
        yield from getattr(self, f"_tx_{kind}")()

    # -- transaction bodies -------------------------------------------------

    def _warehouse_district(self):
        t, rng = self.tpcc, self._rng
        warehouse = rng.randrange(t.n_warehouses)
        district = (warehouse * t.n_districts_per_warehouse
                    + rng.randrange(t.n_districts_per_warehouse))
        return warehouse, district

    def _tx_new_order(self) -> Iterator[SemanticOp]:
        p, t, rng = self.params, self.tpcc, self._rng
        warehouse, district = self._warehouse_district()
        n_lines = rng.randint(t.min_order_lines, t.max_order_lines)

        self._phase(0)
        yield from self._filler(p.txn_filler_ops // 5)

        # Next order-id sequence: a contended district structure.
        self._phase(5)
        yield from self._critical_section(
            lock_id=t.n_warehouses + district, structure=district,
            hot_prob=p.p_hot_migratory)

        # Item/stock lookup per order line; order rows accumulate in
        # private buffers, and only every third line dirties a shared
        # stock block (TPC-C's writes are spread far wider than TPC-B's).
        for line in range(n_lines):
            self._phase(1 + line % 3)
            item = rng.randrange(100_000)
            row_tag = yield from self._index_walk(item)
            if line % 3 == 0:
                yield from self._block_update(item, row_tag)
            yield from self._filler(p.txn_filler_ops // 10)

        # Order insert (sequential, per-process) + commit.
        self._phase(7)
        partition = self.layout.history_bytes // 64
        base = (self.pid * partition
                + (self.transactions_emitted * 16 * 8) % partition)
        for i in range(16):
            yield self.store(self.layout.history_addr(base + i * 8))
        self._phase(8)
        log_off = self.transactions_emitted * p.log_stores * 8
        for i in range(p.log_stores):
            yield self.store(self.layout.log_addr(self.pid,
                                                  log_off + i * 8))
        yield self.simple(OP_WMB)
        if p.commit_blocks:
            yield self.simple(OP_SYSCALL)

    def _tx_payment(self) -> Iterator[SemanticOp]:
        """Structurally the TPC-B transaction: balance updates under
        warehouse and district locks."""
        yield from super()._transaction()

    def _tx_order_status(self) -> Iterator[SemanticOp]:
        p, rng = self.params, self._rng
        self._phase(0)
        yield from self._filler(p.txn_filler_ops // 6)
        customer = rng.randrange(30_000)
        self._phase(2)
        row_tag = yield from self._index_walk(customer)
        for i in range(3):  # read the most recent order's lines
            self._phase(3)
            op, row_tag = self.load(
                self.layout.block_buffer_addr(
                    (customer * 640 + i * 64)),
                dep_tags=(row_tag,) if row_tag is not None else ())
            yield op
            yield from self._filler(p.txn_filler_ops // 12)
        if p.commit_blocks:
            yield self.simple(OP_SYSCALL)

    def _tx_delivery(self) -> Iterator[SemanticOp]:
        p, t, rng = self.params, self.tpcc, self._rng
        warehouse, district = self._warehouse_district()
        self._phase(0)
        yield from self._filler(p.txn_filler_ops // 8)
        for order in range(4):
            self._phase(4)
            key = district * 1000 + order
            row_tag = yield from self._index_walk(key)
            yield from self._block_update(key, row_tag)
            yield from self._filler(p.txn_filler_ops // 10)
        self._phase(6)
        yield from self._critical_section(
            lock_id=t.n_warehouses + district, structure=district,
            hot_prob=0.4)
        self._phase(8)
        log_off = self.transactions_emitted * p.log_stores * 8
        for i in range(p.log_stores):
            yield self.store(self.layout.log_addr(self.pid,
                                                  log_off + i * 8))
        yield self.simple(OP_WMB)
        if p.commit_blocks:
            yield self.simple(OP_SYSCALL)

    def _tx_stock_level(self) -> Iterator[SemanticOp]:
        """Read-heavy: scan recent stock rows (no shared writes)."""
        p, t, rng = self.params, self.tpcc, self._rng
        self._phase(0)
        yield from self._filler(p.txn_filler_ops // 8)
        base = rng.randrange(1 << 20) * 64
        tag = None
        for row in range(t.stock_scan_rows):
            self._phase(1 + row % 2)
            op, tag = self.load(
                self.layout.block_buffer_addr(base + row * 80),
                dep_tags=(tag,) if tag is not None and row % 4 == 0
                else ())
            yield op
            cmp_op, _ = self.alu(dep_tags=(tag,))
            yield cmp_op
            if row % 8 == 7:
                yield from self._filler(p.txn_filler_ops // 24)
        if p.commit_blocks:
            yield self.simple(OP_SYSCALL)
