"""Instruction records produced by the workload generators.

The simulator is trace-driven (like the paper, section 2.2): generators emit
a dynamic stream of :class:`Instruction` records per server process.  Each
record carries everything the timing model needs -- operation kind, program
counter, data address, register dependences expressed as *backward dynamic
distances*, execution latency, and branch outcome -- so the simulator never
needs an architectural register file.

Dependence encoding
-------------------
``deps`` is a tuple of positive integers; ``d`` in ``deps`` means "this
instruction consumes the result of the instruction ``d`` positions earlier
in this process's dynamic stream".  Producers older than the instruction
window have necessarily completed, so only distances smaller than the window
matter for timing.
"""

from __future__ import annotations

# Operation kinds (small ints for speed on the simulator hot path).
OP_INT = 0        # integer ALU
OP_FP = 1         # floating point
OP_LOAD = 2
OP_STORE = 3
OP_BRANCH = 4     # conditional branch / jump / call / return
OP_LOCK_ACQ = 5   # read-modify-write lock acquire (simulator models the spin)
OP_LOCK_REL = 6   # lock release store
OP_MB = 7         # Alpha MB: full memory barrier
OP_WMB = 8        # Alpha WMB: write memory barrier
OP_SYSCALL = 9    # blocking system call: context-switch hint (paper 2.2)
OP_PREFETCH = 10  # software non-binding prefetch (exclusive)
OP_FLUSH = 11     # software flush / WriteThrough hint (sharing writeback)

OP_NAMES = {
    OP_INT: "int", OP_FP: "fp", OP_LOAD: "load", OP_STORE: "store",
    OP_BRANCH: "branch", OP_LOCK_ACQ: "lock_acq", OP_LOCK_REL: "lock_rel",
    OP_MB: "mb", OP_WMB: "wmb", OP_SYSCALL: "syscall",
    OP_PREFETCH: "prefetch", OP_FLUSH: "flush",
}

#: Ops that access the data memory hierarchy.
MEMORY_OPS = frozenset({OP_LOAD, OP_STORE, OP_LOCK_ACQ, OP_LOCK_REL,
                        OP_PREFETCH, OP_FLUSH})

#: Ops accounted to the synchronization component of execution time.
SYNC_OPS = frozenset({OP_LOCK_ACQ, OP_LOCK_REL, OP_MB, OP_WMB})

# Branch kinds (for predictor routing, Figure 1).
BR_COND = 0     # conditional: hybrid PA/g predictor
BR_JUMP = 1     # computed jump: BTB
BR_CALL = 2     # call: BTB + RAS push
BR_RETURN = 3   # return: RAS pop


class Instruction:
    """One dynamic instruction.

    Attributes
    ----------
    op:
        One of the ``OP_*`` constants.
    pc:
        Virtual byte address of the instruction (4-byte instructions).
    addr:
        Virtual byte address touched by memory ops; 0 otherwise.
    deps:
        Backward dynamic distances to producer instructions.
    latency:
        Execution latency in cycles once issued to a functional unit.
    taken / target / branch_kind:
        Branch outcome metadata (``op == OP_BRANCH`` only).
    """

    __slots__ = ("op", "pc", "addr", "deps", "latency",
                 "taken", "target", "branch_kind", "bp_outcome")

    def __init__(self, op, pc, addr=0, deps=(), latency=1,
                 taken=False, target=0, branch_kind=BR_COND):
        self.op = op
        self.pc = pc
        self.addr = addr
        self.deps = deps
        self.latency = latency
        self.taken = taken
        self.target = target
        self.branch_kind = branch_kind
        # Cached predictor outcome: a squashed-and-refetched branch must
        # not retrain the predictor or pop the RAS a second time.
        self.bp_outcome = None

    @property
    def is_memory(self) -> bool:
        return self.op in MEMORY_OPS

    def __repr__(self) -> str:  # debugging aid only; not on the hot path
        extra = ""
        if self.op == OP_BRANCH:
            extra = f" taken={self.taken} target={self.target:#x}"
        elif self.is_memory:
            extra = f" addr={self.addr:#x}"
        return (f"Instruction({OP_NAMES[self.op]}, pc={self.pc:#x},"
                f" deps={self.deps}{extra})")
