"""Trace capture and replay (the paper's ATOM-style workflow).

The paper drives RSIM with per-process trace *files* captured by an ATOM
tool on an AlphaServer (section 2.2).  Our generators produce streams on
the fly, but capturing them to files is useful for exactly the reasons
the authors used files: bit-identical replay across experiments, sharing
workloads between machines, and inspecting what the simulator consumed.

Format: one record per instruction, fixed 32-byte little-endian layout::

    u8  op          u8  branch_kind   u8  taken   u8  n_deps
    u32 latency     u64 pc            u64 addr    u64 target/deps

``deps`` (up to 3 backward distances, u16 each) are packed into the last
word for non-branches; branches store their target there instead (their
deps are always empty in the generated workloads).
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, Optional

from repro.trace.instr import OP_BRANCH, Instruction

_RECORD = struct.Struct("<BBBBIQQQ")
MAGIC = b"RPTRACE1"


class TraceWriteError(ValueError):
    """The instruction cannot be represented in the file format."""


def write_trace(instructions: Iterable[Instruction], fh: BinaryIO,
                limit: Optional[int] = None) -> int:
    """Write up to ``limit`` instructions; returns the count written."""
    fh.write(MAGIC)
    count = 0
    for instr in instructions:
        if limit is not None and count >= limit:
            break
        if instr.op == OP_BRANCH:
            last = instr.target
            n_deps = 0
        else:
            deps = tuple(instr.deps)[:3]
            if any(d > 0xFFFF for d in deps):
                raise TraceWriteError(
                    f"dependence distance too large: {deps}")
            n_deps = len(deps)
            last = 0
            for i, d in enumerate(deps):
                last |= d << (16 * i)
        fh.write(_RECORD.pack(instr.op, instr.branch_kind,
                              1 if instr.taken else 0, n_deps,
                              instr.latency, instr.pc, instr.addr, last))
        count += 1
    return count


def read_trace(fh: BinaryIO) -> Iterator[Instruction]:
    """Yield instructions from a trace file (lazy)."""
    magic = fh.read(len(MAGIC))
    if magic != MAGIC:
        raise ValueError(f"not a trace file (magic {magic!r})")
    while True:
        raw = fh.read(_RECORD.size)
        if not raw:
            return
        if len(raw) != _RECORD.size:
            raise ValueError("truncated trace record")
        (op, kind, taken, n_deps, latency, pc, addr,
         last) = _RECORD.unpack(raw)
        if op == OP_BRANCH:
            yield Instruction(op, pc, addr=addr, latency=latency,
                              taken=bool(taken), target=last,
                              branch_kind=kind)
        else:
            deps = tuple((last >> (16 * i)) & 0xFFFF
                         for i in range(n_deps))
            yield Instruction(op, pc, addr=addr, deps=deps,
                              latency=latency)


def capture(generator: Iterable[Instruction], path: str,
            n_instructions: int) -> int:
    """Capture the first ``n_instructions`` of a generator to ``path``.

    The file is published atomically (buffered in memory, then one
    :func:`repro.run.atomicio.atomic_write_bytes`), so a capture killed
    mid-write never leaves a truncated trace behind.
    """
    import io

    from repro.run import atomicio
    buffer = io.BytesIO()
    count = write_trace(iter(generator), buffer, limit=n_instructions)
    if not atomicio.atomic_write_bytes(Path(path), buffer.getvalue(),
                                       category="trace"):
        raise OSError(f"could not write trace file {path}")
    return count


def replay(path: str, loop: bool = False) -> Iterator[Instruction]:
    """Instruction stream from a trace file.

    With ``loop=True`` the trace repeats forever (so it can drive
    simulations longer than the captured segment, like cycling the
    generated workloads).
    """
    while True:
        with open(path, "rb") as fh:
            yield from read_trace(fh)
        if not loop:
            return
