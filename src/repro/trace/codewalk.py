"""Instruction-fetch behaviour of the synthetic workloads.

The paper characterizes OLTP instruction references (section 4.1) as

* a ~560KB instruction working set that overwhelms the 128KB L1 I-cache but
  fits in the 8MB L2,
* a *streaming* pattern -- successive references access successive lines,
  with streams typically shorter than 4 cache lines,
* remaining misses with repeating sequences but no regular stride.

:class:`CodeWalker` reproduces this: the code region is carved into
routines; execution proceeds in basic blocks that fall through sequentially
(producing the short streams) and end in branches that either continue,
jump within the routine, or transfer to another routine (call/return/jump).
Each static conditional branch has a per-PC outcome bias, so a real
predictor achieves realistic accuracy instead of being fed oracle bits.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.trace.instr import BR_CALL, BR_COND, BR_JUMP, BR_RETURN

INSTR_BYTES = 4


@dataclass
class BranchDescriptor:
    """Outcome of one dynamic branch placed by the walker."""

    pc: int
    taken: bool
    target: int
    kind: int  # BR_* constant


class CodeWalker:
    """Walks a synthetic static code image, producing PCs and branches.

    Parameters
    ----------
    base, code_bytes:
        The virtual code region.
    rng:
        Private ``random.Random`` (determinism).
    hot_fraction:
        Probability that a control transfer lands in the hot routine subset.
    hot_routines:
        Size of the hot subset (the remaining routines form the cold tail
        that produces the large instruction footprint).
    hard_branch_fraction:
        Fraction of static conditional branches with weakly-biased outcomes
        (the source of branch mispredictions).
    avg_routine_lines:
        Mean routine length in cache lines; streams are bounded by routine
        length, matching the paper's < 4-line streams.
    """

    def __init__(self, base: int, code_bytes: int, rng: random.Random,
                 hot_fraction: float = 0.25, hot_routines: int = 16,
                 hard_branch_fraction: float = 0.15,
                 avg_routine_lines: int = 3, line_size: int = 64,
                 max_call_depth: int = 8,
                 call_target_variability: float = 0.10,
                 jump_target_variability: float = 0.25,
                 p_call: float = 0.12, p_return: float = 0.12,
                 p_jump: float = 0.06, call_locality: int = 0):
        self._base = base
        self._rng = rng
        self._line = line_size
        self._hard_fraction = hard_branch_fraction
        self._hot_fraction = hot_fraction
        self._max_depth = max_call_depth
        self._call_variability = call_target_variability
        self._jump_variability = jump_target_variability
        self._p_call = p_call
        self._p_return = p_return
        self._p_jump = p_jump
        self._call_locality = call_locality
        self._routines = self._carve_routines(code_bytes, avg_routine_lines)
        self._starts = [start for start, _ in self._routines]
        self._hot_n = min(hot_routines, len(self._routines))
        self._stack: List[int] = []
        start, length = self._routines[0]
        self._pc = start
        self._routine_end = start + length

    def _carve_routines(self, code_bytes: int,
                        avg_lines: int) -> List[Tuple[int, int]]:
        """Split the code region into contiguous routines (start, bytes)."""
        routines = []
        offset = 0
        # Deterministic local generator so routine layout does not depend on
        # how much of the walk-RNG has been consumed.
        layout_rng = random.Random(0xC0DE ^ code_bytes)
        while offset < code_bytes:
            lines = max(1, int(layout_rng.expovariate(1.0 / avg_lines)) + 1)
            length = min(lines * self._line, code_bytes - offset)
            routines.append((self._base + offset, length))
            offset += length
        return routines

    # -- branch bias -------------------------------------------------------

    @staticmethod
    def _site_hash(pc: int) -> int:
        """Stable per-PC hash: static code properties (block boundaries,
        branch kinds, biases, call targets) are functions of the PC, so
        every revisit of an address behaves like the same static code."""
        h = (pc * 2654435761) & 0xFFFFFFFF
        return (h ^ (h >> 13)) & 0xFFFFFFFF

    def block_len_at(self, pc: int, lo: int, hi: int) -> int:
        """Deterministic basic-block length starting at ``pc``."""
        return lo + self._site_hash(pc) % (hi - lo + 1)

    def _bias_for(self, pc: int) -> float:
        """Per-static-branch taken probability, stable for a given PC."""
        h = self._site_hash(pc)
        if (h % 1000) / 1000.0 < self._hard_fraction:
            return 0.55 if h & 0x100 else 0.45    # weakly biased: hard
        return 0.97 if h & 0x200 else 0.03        # strongly biased: easy

    def _pick_routine(self) -> Tuple[int, int]:
        if self._rng.random() < self._hot_fraction:
            idx = self._rng.randrange(self._hot_n)
        else:
            idx = self._rng.randrange(len(self._routines))
        return self._routines[idx]

    def _site_routine(self, br_pc: int, variability: float
                      ) -> Tuple[int, int]:
        """Target routine of a call/jump *site*: stable per static PC
        (so the BTB can learn it), occasionally overridden (indirect
        calls / dispatch tables).

        With ``call_locality`` > 0 non-hot targets lie within a
        neighbourhood of the calling routine: real code clusters callees
        near callers, which is what gives transaction *phases* distinct
        slices of the instruction footprint.
        """
        if self._rng.random() < variability:
            return self._pick_routine()
        h = (br_pc * 0x9E3779B1) >> 8
        if (h % 997) / 997.0 < self._hot_fraction:
            idx = h % self._hot_n
        elif self._call_locality:
            here = bisect.bisect_right(self._starts, br_pc) - 1
            span = 2 * self._call_locality + 1
            delta = (h >> 4) % span - self._call_locality
            idx = max(0, min(len(self._routines) - 1, here + delta))
        else:
            idx = h % len(self._routines)
        return self._routines[idx]

    def enter_phase(self, phase: int, n_phases: int) -> None:
        """Jump to the entry routine of transaction phase ``phase`` and
        clear the call stack (a new top-level engine stage begins)."""
        idx = (phase % n_phases) * len(self._routines) // n_phases
        start, length = self._routines[idx]
        self._stack.clear()
        self._pc = start
        self._routine_end = start + length

    # -- public walking API --------------------------------------------------

    def block(self, n_instrs: int) -> List[int]:
        """Return ``n_instrs`` sequential PCs and advance the walk."""
        pcs = [self._pc + i * INSTR_BYTES for i in range(n_instrs)]
        self._pc += n_instrs * INSTR_BYTES
        return pcs

    def end_block(self) -> BranchDescriptor:
        """Terminate the current basic block with a branch.

        The branch *kind* and its static properties are deterministic in
        the branch PC (real code does not change shape between visits);
        only conditional outcomes and occasional indirect-target
        variations are dynamic.  Returns the branch descriptor and
        repositions the walk at the branch's actual successor.
        """
        br_pc = self._pc
        fallthrough = br_pc + INSTR_BYTES
        rng = self._rng
        at_end = br_pc >= self._routine_end
        roll = (self._site_hash(br_pc) % 9973) / 9973.0
        p_call, p_return, p_jump = self._p_call, self._p_return, self._p_jump

        if at_end:
            kind = BR_RETURN if self._stack else BR_JUMP
        elif roll < p_return:
            kind = BR_RETURN if self._stack else BR_COND
        elif roll < p_return + p_call:
            kind = BR_CALL if len(self._stack) < self._max_depth else BR_COND
        elif roll < p_return + p_call + p_jump:
            kind = BR_JUMP
        else:
            kind = BR_COND

        if kind == BR_RETURN:
            desc = BranchDescriptor(br_pc, True, self._stack.pop(), BR_RETURN)
        elif kind == BR_CALL:
            start, length = self._site_routine(br_pc, self._call_variability)
            self._stack.append(fallthrough)
            self._routine_end = start + length
            desc = BranchDescriptor(br_pc, True, start, BR_CALL)
        elif kind == BR_JUMP:
            start, length = self._site_routine(br_pc, self._jump_variability)
            self._routine_end = start + length
            desc = BranchDescriptor(br_pc, True, start, BR_JUMP)
        else:
            taken = rng.random() < self._bias_for(br_pc)
            if taken:
                # Short forward skip within the routine: keeps the stream
                # property (same or next couple of lines).
                skip = 2 + self._site_hash(br_pc + 4) % 8
                target = min(br_pc + skip * INSTR_BYTES, self._routine_end)
            else:
                target = fallthrough
            desc = BranchDescriptor(br_pc, taken, target, BR_COND)

        self._pc = desc.target if desc.taken else fallthrough
        if desc.kind == BR_RETURN:
            # Re-derive the routine end loosely; precision is not needed for
            # fetch behaviour, only for stream lengths.
            self._routine_end = self._pc + 2 * self._line
        return desc

    def jump_to_loop_head(self, head_pc: int) -> None:
        """Force the walk to a loop head (used by the DSS scan kernel)."""
        self._pc = head_pc
        self._routine_end = head_pc + 8 * self._line

    @property
    def pc(self) -> int:
        return self._pc

    @property
    def n_routines(self) -> int:
        return len(self._routines)
