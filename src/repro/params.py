"""System parameter model (Figure 1 of the paper).

Every simulated structure is configured from the frozen dataclasses here.
Two factory functions build complete systems:

* :func:`paper_system` -- the exact parameters of Figure 1 (1 GHz, 4-way
  issue, 64-entry window, 128KB L1s, 8MB L2, 4 nodes).
* :func:`default_system` -- a simulation-scaled configuration that divides
  cache capacities by :data:`DEFAULT_SCALE` while keeping associativities,
  latencies and processor parameters identical.  The workload generators
  scale their footprints by the same factor, so miss *ratios* and
  execution-time *shares* are preserved at Python-feasible trace lengths.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass

#: Capacity scale factor between the paper configuration and the default
#: simulation configuration (applies to caches and workload footprints).
DEFAULT_SCALE = 16


class ConsistencyModel(enum.Enum):
    """Hardware memory consistency model (paper section 3.4)."""

    SC = "sequential"
    PC = "processor"
    RC = "release"  # Alpha consistency, called RC in the paper


class ConsistencyImpl(enum.Enum):
    """Implementation ladder for a consistency model (paper section 3.4)."""

    STRAIGHTFORWARD = "straightforward"
    PREFETCH = "hardware prefetch from the instruction window"
    SPECULATIVE = "prefetch + speculative load execution"


@dataclass(frozen=True)
class CacheParams:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    assoc: int
    line_size: int = 64
    hit_time: int = 1
    request_ports: int = 1
    mshrs: int = 8

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_size) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"assoc*line ({self.assoc}*{self.line_size})"
            )
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{self.name}: number of sets must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_size)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    def scaled(self, factor: int) -> "CacheParams":
        """Return a copy with capacity divided by ``factor``."""
        return dataclasses.replace(self, size_bytes=self.size_bytes // factor)


@dataclass(frozen=True)
class BranchPredictorParams:
    """Hybrid PA/g predictor + BTB + RAS (Figure 1)."""

    pa_table_entries: int = 4096     # per-address first-level table
    pa_history_bits: int = 12
    global_history_bits: int = 12
    choice_entries: int = 4096
    btb_entries: int = 512
    btb_assoc: int = 4
    ras_entries: int = 32
    perfect: bool = False


@dataclass(frozen=True)
class ProcessorParams:
    """Core pipeline parameters (Figure 1)."""

    out_of_order: bool = True
    issue_width: int = 4
    window_size: int = 64
    int_alus: int = 2
    fp_alus: int = 2
    addr_gen_units: int = 2
    max_spec_branches: int = 8
    mem_queue_size: int = 32
    infinite_functional_units: bool = False
    smt_contexts: int = 1      # >1: simultaneous multithreading (section 5
                               # comparison with Lo et al. [13])

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ValueError("issue width must be >= 1")
        if self.window_size < self.issue_width:
            raise ValueError("window must hold at least one issue group")


@dataclass(frozen=True)
class TlbParams:
    """Fully-associative TLB (Figure 1: 128 entries, 8K pages)."""

    entries: int = 128
    page_size: int = 8192
    miss_latency: int = 40  # software-walk style refill cost in cycles
    perfect: bool = False


@dataclass(frozen=True)
class MemoryLatencies:
    """Contentionless latencies in processor cycles (Figure 1).

    Remote and cache-to-cache latencies are expressed as a base plus a
    per-hop increment so a 2D mesh produces the paper's 160-180 and
    280-310 cycle ranges depending on node distance.
    """

    l2_hit: int = 20
    local_read: int = 100
    remote_read_base: int = 150
    remote_read_per_hop: int = 10
    cache_to_cache_base: int = 265
    cache_to_cache_per_hop: int = 15
    directory_occupancy: int = 6   # cycles the home directory is busy per request
    memory_occupancy: int = 10     # cycles a memory bank is busy per request


@dataclass(frozen=True)
class SchedulerParams:
    """OS scheduler model (paper section 2.2).

    The costs are scaled with the workload (transactions are ~10^3
    instructions in the scaled traces vs ~10^5 in the real workload) so
    context-switch overhead and I/O-hiding behaviour keep the same
    proportions: I/O latency is hidden as long as the other processes on
    the CPU supply more work than one blocking call takes.
    """

    context_switch_cycles: int = 150
    blocking_io_cycles: int = 8000    # latency of a blocking system call / I/O
    quantum_cycles: int = 1_000_000   # effectively: switch only on blocking calls


#: The ephemeral registry: SystemParams fields that configure tooling
#: (checkers, watchdogs, backend selection) rather than the simulated
#: machine.  They are excluded from serialization and cache
#: fingerprints, and the static contract auditor (rule R011) forbids
#: reading them outside a short list of dispatch gates.  Must stay a
#: literal set: ``repro lint`` cross-checks it against its own registry
#: and ``repro.params_io`` aliases it for fingerprint exclusion.
EPHEMERAL_FIELDS = frozenset({
    "check", "watchdog_cycles", "watchdog_node_cycles", "backend"})


@dataclass(frozen=True)
class SystemParams:
    """Complete description of one simulated machine."""

    n_nodes: int = 4
    mesh_width: int = 2  # 2D mesh: n_nodes arranged mesh_width x (n/mesh_width)
    processor: ProcessorParams = ProcessorParams()
    bpred: BranchPredictorParams = BranchPredictorParams()
    l1i: CacheParams = CacheParams("L1I", 128 * 1024, 2, hit_time=1, mshrs=8)
    l1d: CacheParams = CacheParams("L1D", 128 * 1024, 2, hit_time=1,
                                   request_ports=2, mshrs=8)
    l2: CacheParams = CacheParams("L2", 8 * 1024 * 1024, 4, hit_time=20,
                                  request_ports=1, mshrs=8)
    itlb: TlbParams = TlbParams()
    dtlb: TlbParams = TlbParams()
    latencies: MemoryLatencies = MemoryLatencies()
    scheduler: SchedulerParams = SchedulerParams()
    consistency: ConsistencyModel = ConsistencyModel.RC
    consistency_impl: ConsistencyImpl = ConsistencyImpl.STRAIGHTFORWARD
    stream_buffer_entries: int = 0          # 0 disables the I-stream buffer
    branch_iprefetch: bool = False          # path-predicting I-prefetcher
                                            # (section 4.1 alternative)
    perfect_icache: bool = False
    perfect_dcache: bool = False
    migratory_read_speedup: float = 0.0     # Fig 7(b) bound: fraction shaved
                                            # off migratory dirty-read latency
    migratory_protocol: bool = False        # Stenstrom-style adaptive
                                            # protocol (footnote 2 ablation)
    check: bool = False                     # run the invariant sanitizer
                                            # (repro.check); never affects
                                            # timing, excluded from
                                            # serialization/fingerprints
    watchdog_cycles: int = 0                # forward-progress watchdog:
                                            # abort with WedgeError when no
                                            # instruction retires machine-wide
                                            # for this many cycles (0 = off);
                                            # ephemeral like `check`
    watchdog_node_cycles: int = 0           # same, per node with a runnable
                                            # process (0 = off)
    backend: str = "reference"              # main-loop implementation:
                                            # "reference" (uniform grid),
                                            # "fast" (certified tick
                                            # skipping), or "batch" (fast
                                            # plus dense hot-window rounds
                                            # with bulk stat retirement);
                                            # results are byte-identical,
                                            # so this is ephemeral like
                                            # `check` and excluded from
                                            # fingerprints

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("need at least one node")
        if self.n_nodes % self.mesh_width and self.n_nodes > 1:
            raise ValueError("n_nodes must be a multiple of mesh_width")
        if self.l1i.line_size != self.l2.line_size and self.stream_buffer_entries:
            raise ValueError("stream buffer requires matching L1I/L2 line sizes")
        if self.backend not in ("reference", "fast", "batch"):
            raise ValueError(
                f"backend must be 'reference', 'fast' or 'batch', got "
                f"{self.backend!r}")

    @property
    def page_size(self) -> int:
        return self.itlb.page_size

    def replace(self, **changes) -> "SystemParams":
        """Convenience wrapper around :func:`dataclasses.replace`."""
        return dataclasses.replace(self, **changes)


def paper_system(**changes) -> SystemParams:
    """The Figure 1 configuration, optionally overridden via ``changes``."""
    return SystemParams().replace(**changes)


def default_system(scale: int = DEFAULT_SCALE, **changes) -> SystemParams:
    """The simulation-scaled configuration used by tests and benchmarks.

    Cache capacities are divided by ``scale``; everything else matches
    :func:`paper_system`.  Workload generators built through
    ``repro.trace`` apply the same factor to their footprints.
    """
    base = SystemParams()
    scaled = base.replace(
        l1i=base.l1i.scaled(scale),
        l1d=base.l1d.scaled(scale),
        l2=base.l2.scaled(scale),
    )
    return scaled.replace(**changes)
