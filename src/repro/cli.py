"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro characterize [--quick]      # in-text tables
    python -m repro figure 2a|2b|2c|3a|3b|3c|4|5|6|7a|7b [oltp|dss] [--quick]
    python -m repro report [--quick]            # everything, in order
    python -m repro sweep-status                # manifest progress, no sims
    python -m repro validate                    # internal consistency checks
    python -m repro check [--skip-mutations]    # litmus + sanitizer suite
    python -m repro lint [paths...]             # determinism linter
    python -m repro profile [oltp|dss|tpcc]     # hot-path profiling harness
    python -m repro replay BUNDLE               # re-run a crash-triage bundle
    python -m repro sweep [oltp|dss|tpcc]       # seed sweep (fabric-capable)
    python -m repro worker --connect HOST:PORT  # serve jobs for a coordinator
    python -m repro gc [--dry-run]              # retention GC for cache debris

``--quick`` runs small simulations (~seconds each) for smoke testing;
the defaults match the benchmark harness.  ``validate``, ``check`` and
``lint`` exit nonzero on any failure, so they gate CI directly.

Runner options (accepted before or after the subcommand):

``--jobs N``
    Fan independent simulations out over ``N`` worker processes
    (default: the ``REPRO_JOBS`` environment variable, else 1).
``--no-cache``
    Disable the persistent result cache.  By default completed runs are
    memoized under ``.repro-cache/`` (override with ``REPRO_CACHE_DIR``)
    keyed by a content hash of the full configuration, so repeating a
    report is near-instant; ``repro report`` prints a cache-stats line.
``--cache-dir DIR``
    Put the result cache at ``DIR`` instead of the default location
    (equivalent to ``REPRO_CACHE_DIR``, but per-invocation).
``--no-arenas``
    Disable trace arenas: every job regenerates its instruction streams
    instead of replaying a materialized arena.  By default sweeps whose
    jobs share a workload/seed/run-size materialize the streams once
    (under ``traces/`` beside the result cache) and replay them
    everywhere; results are byte-identical either way.
``--trace-dir DIR``
    Store trace arenas at ``DIR`` (equivalent to ``REPRO_TRACE_DIR``).
``--workers SPECS``
    Fabric worker specs, comma-separated: ``spawn:N`` forks local
    workers, ``ssh:HOST`` (or a bare hostname) launches one over ssh,
    ``wait:N`` expects N external ``repro worker`` processes to dial
    in.  Implies ``--dispatch fabric`` (default: ``REPRO_WORKERS``).
``--dispatch local|fabric``
    Execution strategy: ``local`` (process pool, then serial) or
    ``fabric`` (multi-host coordinator with worker leases and
    failover, degrading to local when all workers are lost).  Results
    are byte-identical either way (default: ``REPRO_DISPATCH``).

Resilience options (accepted before or after the subcommand):

``--retries N``
    Retry each failing job up to ``N`` extra times with deterministic
    exponential backoff before recording it as failed (default 2).
    Jobs that exhaust their retries render as explicit gaps; the sweep
    keeps going.
``--job-timeout SECONDS``
    Abandon and retry any single attempt running longer than this
    (default: unlimited).  On the process pool the attempt is cancelled
    outright; serially it is discarded after the fact.
``--resume``
    Continue an interrupted sweep: keep the completed entries of the
    sweep manifest (written next to the cache) and execute only the
    incomplete remainder.  ``repro sweep-status`` prints the manifest
    without running anything.
``--checkpoint-every N``
    Write a mid-simulation checkpoint every ``N`` retired instructions
    (default 100000, or ``REPRO_CHECKPOINT_EVERY``; 0 disables writes).
    A killed or crashed attempt resumes from its newest valid
    checkpoint instead of a cold start, and any failed attempt leaves a
    replayable triage bundle under ``triage/`` beside the result cache
    -- ``repro replay <bundle>`` re-runs it deterministically,
    ``--from-checkpoint`` jumping straight to the checkpointed region.
    Checkpoints require the result cache (they live beside it).

Deterministic fault injection for exercising all of the above is
enabled with ``REPRO_FAULTS=crash:0.2,hang:0.1,corrupt:0.1,seed:7``
(see ``repro.run.faults``); injected faults are host-side only and
never change simulated cycle counts.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

import repro.run as run
from repro.core import figures as F
from repro.stats.render import render_figure

_QUICK_SIZES = {"oltp": (12_000, 20_000), "dss": (10_000, 16_000)}


def _sizes(workload: str, quick: bool):
    if quick:
        return _QUICK_SIZES[workload]
    return F.RUN_SIZES[workload]


def _print_figure(fig) -> None:
    print(fig.format_table())
    rows = [(row.label, row.normalized,
             row.result.breakdown.summary_row()) for row in fig.rows]
    print(render_figure(rows))
    print()


def cmd_characterize(quick: bool) -> None:
    instr, warm = _sizes("oltp", quick)
    table = F.characterization_table(instructions=instr, warmup=warm)
    print("== In-text characterization ==")
    for name, row in table.items():
        print(f"  {name.upper()}:")
        if row is None:
            print("    FAILED (job exhausted retries; see sweep-status)")
            continue
        for key, value in row.items():
            print(f"    {key:<36s} {value:.3f}")


def cmd_figure(which: str, workload: Optional[str], quick: bool) -> None:
    wl = workload or "oltp"
    instr, warm = _sizes(wl if which not in ("4", "7a", "7b") else "oltp",
                         quick)
    if which in ("2a", "3a"):
        wl = "oltp" if which.startswith("2") else "dss"
        instr, warm = _sizes(wl, quick)
        _print_figure(F.figure_ilp_issue_width(wl, instr, warm))
    elif which in ("2b", "3b"):
        wl = "oltp" if which.startswith("2") else "dss"
        instr, warm = _sizes(wl, quick)
        _print_figure(F.figure_ilp_window(wl, instr, warm))
    elif which in ("2c", "3c"):
        wl = "oltp" if which.startswith("2") else "dss"
        instr, warm = _sizes(wl, quick)
        fig = F.figure_ilp_mshrs(wl, instr, warm)
        _print_figure(fig)
        for key, dist in fig.extras.items():
            row = " ".join(f">={n}:{v:.2f}" for n, v in dist.items())
            print(f"  {key}: {row}")
    elif which == "4":
        _print_figure(F.figure4(instr, warm))
    elif which == "5":
        instr, warm = _sizes(wl, quick)
        _print_figure(F.figure5(wl, instr, warm))
    elif which == "6":
        instr, warm = _sizes(wl, quick)
        _print_figure(F.figure6(wl, instr, warm))
    elif which == "7a":
        _print_figure(F.figure7a(instr, warm))
    elif which == "7b":
        _print_figure(F.figure7b(instr, warm))
    else:
        raise SystemExit(f"unknown figure {which!r}")


def cmd_report(quick: bool) -> None:
    from repro.run import profile as run_profile
    manifest = run.shared_manifest()
    if manifest is not None and run.runner_state().resume \
            and len(manifest):
        print(f"resuming: {manifest.format_summary()}")
    run_profile.reset_phase_log()
    with run_profile.phase("characterize"):
        cmd_characterize(quick)
    print()
    for which, workload in (("2a", None), ("2b", None), ("2c", None),
                            ("3a", None), ("3b", None), ("3c", None),
                            ("4", None), ("5", "oltp"), ("5", "dss"),
                            ("6", "oltp"), ("6", "dss"),
                            ("7a", None), ("7b", None)):
        label = f"figure {which}" + (f" {workload}" if workload else "")
        with run_profile.phase(label):
            cmd_figure(which, workload, quick)
    cache = run.shared_cache()
    if cache is not None:
        print(cache.format_stats())
    if manifest is not None:
        print(manifest.format_summary())
    print(run_profile.format_phase_log())


def cmd_sweep_status() -> int:
    """Print manifest progress without running any simulation.

    Exits nonzero when the manifest records failed jobs, so scripted
    sweeps (CI, Makefiles) cannot mistake a sweep with gaps for a clean
    one.
    """
    manifest = run.shared_manifest()
    if manifest is None:
        print("sweep-status: result cache disabled, no manifest")
        return 1
    print(f"manifest: {manifest.path}")
    print(manifest.format_status())
    cache = run.shared_cache()
    if cache is not None:
        print(cache.format_stats())
    failed = manifest.counts().get("failed", 0)
    if failed:
        print(f"FAILED: {failed} job(s) exhausted retries")
        return 1
    return 0


def cmd_sweep(args, quick: bool) -> int:
    """Run a seed sweep through the configured dispatcher chain.

    One job per seed for the chosen workload; with ``--workers`` the
    sweep fans out over the fabric (and degrades to local execution if
    every worker is lost).  Exits nonzero when any job exhausted its
    retries.
    """
    from repro.params import default_system
    from repro.run.jobs import JobSpec, WorkloadSpec
    sizes_key = "dss" if args.workload == "dss" else "oltp"
    instr, warm = _sizes(sizes_key, quick)
    instructions = args.instructions if args.instructions is not None \
        else instr
    warmup = args.warmup if args.warmup is not None else warm
    specs = [JobSpec(default_system(), WorkloadSpec(args.workload),
                     instructions=instructions, warmup=warmup, seed=seed)
             for seed in range(max(1, args.seeds))]
    report = run.run_many(specs)
    print(report.format_summary())
    if report.fell_back_to_serial:
        print("sweep: degraded to serial execution "
              "(workers/pool unavailable)")
    manifest = run.shared_manifest()
    if manifest is not None:
        print(manifest.format_summary())
    for outcome in report.failures:
        print(f"FAILED {outcome.spec.describe()}: {outcome.error}")
    return 1 if report.failures else 0


def cmd_gc(args) -> int:
    """Plan (and, without ``--dry-run``, apply) cache-debris retention."""
    import dataclasses as _dc

    from repro.run import gc as run_gc
    cache = run.shared_cache()
    cache_dir = cache.path if cache is not None \
        else run.default_cache_dir()
    rules = run_gc.DEFAULT_RULES
    if args.max_age_days is not None:
        age = max(0.0, args.max_age_days) * 86400.0
        rules = {category: _dc.replace(rule, max_age_s=age)
                 for category, rule in rules.items()}
    plan = run_gc.plan_gc(cache_dir, rules=rules,
                          manifest=run.shared_manifest())
    print(f"gc: {cache_dir}")
    print(plan.format_plan(verbose=args.verbose))
    if args.dry_run:
        print("gc: dry run, nothing deleted")
        return 0
    removed, freed = plan.apply()
    run_gc.write_gc_state(cache_dir, plan, removed, freed)
    print(f"gc: removed {removed} item(s), freed {freed} bytes")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    # Shared options use default=None / SUPPRESS so a flag given before
    # the subcommand is not clobbered by the subparser's defaults.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--quick", action="store_true",
                        default=argparse.SUPPRESS,
                        help="small simulations for smoke testing")
    common.add_argument("--jobs", type=int, default=argparse.SUPPRESS,
                        metavar="N",
                        help="worker processes for independent runs "
                             "(default: $REPRO_JOBS or 1)")
    common.add_argument("--no-cache", action="store_true",
                        default=argparse.SUPPRESS,
                        help="disable the persistent result cache")
    common.add_argument("--cache-dir", default=argparse.SUPPRESS,
                        metavar="DIR",
                        help="result cache location (default: "
                             "$REPRO_CACHE_DIR or .repro-cache/)")
    common.add_argument("--no-arenas", action="store_true",
                        default=argparse.SUPPRESS,
                        help="regenerate traces per job instead of "
                             "replaying materialized arenas")
    common.add_argument("--trace-dir", default=argparse.SUPPRESS,
                        metavar="DIR",
                        help="trace arena location (default: traces/ "
                             "beside the result cache, or "
                             "$REPRO_TRACE_DIR)")
    common.add_argument("--retries", type=int, default=argparse.SUPPRESS,
                        metavar="N",
                        help="extra attempts per failed job before "
                             "recording it as a gap (default 2)")
    common.add_argument("--job-timeout", type=float,
                        default=argparse.SUPPRESS, metavar="SECONDS",
                        help="abandon and retry any attempt running "
                             "longer than this (default: unlimited)")
    common.add_argument("--resume", action="store_true",
                        default=argparse.SUPPRESS,
                        help="continue an interrupted sweep from its "
                             "manifest; only the incomplete remainder "
                             "executes")
    common.add_argument("--checkpoint-every", type=int,
                        default=argparse.SUPPRESS, metavar="N",
                        help="write a mid-simulation checkpoint every N "
                             "retired instructions; killed attempts "
                             "resume from the newest one (default "
                             "$REPRO_CHECKPOINT_EVERY or 100000; 0 "
                             "disables writes)")
    common.add_argument("--workers", default=argparse.SUPPRESS,
                        metavar="SPECS",
                        help="fabric worker specs, comma-separated "
                             "(spawn:N, ssh:HOST, wait:N); implies "
                             "--dispatch fabric (default: "
                             "$REPRO_WORKERS)")
    common.add_argument("--dispatch", default=argparse.SUPPRESS,
                        choices=["local", "fabric"],
                        help="execution strategy (default: "
                             "$REPRO_DISPATCH, or fabric when workers "
                             "are given)")
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     parents=[common])
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("characterize", parents=[common])
    fig = sub.add_parser("figure", parents=[common])
    fig.add_argument("which")
    fig.add_argument("workload", nargs="?", choices=["oltp", "dss"])
    sub.add_parser("report", parents=[common])
    sub.add_parser(
        "sweep-status", parents=[common],
        help="print sweep-manifest progress without simulating")
    sub.add_parser("validate", parents=[common])
    check = sub.add_parser(
        "check", parents=[common],
        help="litmus matrix, sanitizer smoke runs and mutation self-test")
    check.add_argument("--skip-mutations", action="store_true",
                       help="skip the mutation self-test (faster)")
    check.add_argument("--durability", action="store_true",
                       help="also audit the durable state under the "
                            "result cache (see `repro audit-state`)")
    lint = sub.add_parser(
        "lint", parents=[common],
        help="AST determinism linter over the simulator sources")
    lint.add_argument("paths", nargs="*",
                      help="files or directories (default: the installed "
                           "repro package)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    lint.add_argument("--explain", metavar="RXXX",
                      help="print a rule's long-form contract and exit")
    lint.add_argument("--format", dest="format", default="text",
                      choices=["text", "json", "sarif"],
                      help="report format (default: text)")
    lint.add_argument("--output", metavar="FILE",
                      help="write the json/sarif report to FILE "
                           "(stdout keeps the text diagnostics)")
    lint.add_argument("--baseline", metavar="FILE",
                      help="ignore findings recorded in this baseline "
                           "file; only new findings count")
    lint.add_argument("--write-baseline", metavar="FILE",
                      help="record the current findings as a baseline "
                           "and exit 0")
    profile = sub.add_parser(
        "profile", parents=[common],
        help="cProfile one simulation; per-subsystem cost and instr/s")
    profile.add_argument("workload", nargs="?", default="oltp",
                         choices=["oltp", "dss", "tpcc"])
    profile.add_argument("--instructions", type=int, default=None,
                         metavar="N",
                         help="measured instructions (default: the "
                              "workload's benchmark size; --quick "
                              "shrinks it)")
    profile.add_argument("--warmup", type=int, default=None, metavar="N")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--top", type=int, default=10, metavar="N",
                         help="hottest functions to list (default 10)")
    profile.add_argument("--compare-arena", action="store_true",
                         help="materialize + replay a trace arena and "
                              "report speedup and byte-identity")
    profile.add_argument("--backend", default="reference",
                         choices=["reference", "fast", "batch"],
                         help="execution backend to profile "
                              "(default: reference)")
    profile.add_argument("--compare-backends", action="store_true",
                         help="profile the job under both backends; "
                              "per-subsystem speedup table plus a "
                              "byte-identity check (exit 1 on "
                              "divergence)")
    profile.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the report as JSON")
    replay = sub.add_parser(
        "replay", parents=[common],
        help="re-run a crash-triage bundle deterministically")
    replay.add_argument("bundle",
                        help="bundle directory (or its job.json) written "
                             "under triage/ beside the result cache")
    replay.add_argument("--from-checkpoint", action="store_true",
                        help="resume from the checkpoint copied into the "
                             "bundle instead of replaying from a cold "
                             "start")
    sweep = sub.add_parser(
        "sweep", parents=[common],
        help="run a seed sweep through the configured dispatcher "
             "(local pool or multi-host fabric)")
    sweep.add_argument("workload", nargs="?", default="oltp",
                       choices=["oltp", "dss", "tpcc"])
    sweep.add_argument("--seeds", type=int, default=8, metavar="N",
                       help="number of seeds to sweep (default 8)")
    sweep.add_argument("--instructions", type=int, default=None,
                       metavar="N",
                       help="measured instructions per job (default: "
                            "the workload's benchmark size; --quick "
                            "shrinks it)")
    sweep.add_argument("--warmup", type=int, default=None, metavar="N")
    worker = sub.add_parser(
        "worker",
        help="serve simulation jobs to a fabric coordinator")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address to dial")
    worker.add_argument("--name", default=None,
                        help="advisory worker name (the coordinator "
                             "assigns the canonical one)")
    worker.add_argument("--quiet", action="store_true",
                        help="suppress per-event stderr logging")
    gc = sub.add_parser(
        "gc", parents=[common],
        help="apply retention caps to checkpoints, triage bundles, "
             "arenas and quarantined entries beside the result cache")
    gc.add_argument("--dry-run", action="store_true",
                    help="print the eviction plan without deleting")
    gc.add_argument("--verbose", action="store_true",
                    help="list every planned eviction and pin")
    gc.add_argument("--max-age-days", type=float, default=None,
                    metavar="D",
                    help="override every category's age cap to D days")
    audit = sub.add_parser(
        "audit-state", parents=[common],
        help="walk every durable artifact (entries, manifest, "
             "checkpoints, arenas, triage, gc journal), verify "
             "checksums and assert the durability contract")
    audit.add_argument("audit_dir", nargs="?", default=None,
                       metavar="CACHE_DIR",
                       help="directory to audit (default: the active "
                            "result cache)")
    audit.add_argument("--sweep", action="store_true",
                       help="remove stale orphaned *.tmp files while "
                            "auditing (young ones are never touched)")
    audit.add_argument("--verbose", action="store_true",
                       help="also list informational notes")
    return parser


def cmd_audit_state(args) -> int:
    """Audit the durable tree; exit 0 iff the contract holds."""
    from repro.run.audit import audit_state
    cache = run.shared_cache()
    target = args.audit_dir if args.audit_dir is not None else (
        cache.path if cache is not None else run.default_cache_dir())
    report = audit_state(target, sweep=args.sweep)
    print(report.format_report(verbose=args.verbose))
    return 0 if report.ok else 1


def cmd_replay(args) -> int:
    """Re-run the job captured in a triage bundle.

    The simulator is deterministic, so the failure either reproduces
    exactly (a simulated wedge or modelling bug -- exit 1, with the
    classification printed) or the run completes cleanly (the original
    failure was host-side: an injected fault, OOM, a kill -- exit 0).
    Fault injection (``REPRO_FAULTS``) is deliberately not consulted.
    """
    from repro.run import checkpoint as ckpt
    from repro.run import triage
    from repro.run.jobs import JobSpec
    from repro.system.machine import WedgeError
    try:
        data = triage.load_bundle(args.bundle)
    except (OSError, ValueError) as exc:
        print(f"replay: cannot load bundle: {exc}")
        return 2
    print(triage.format_bundle(data))
    spec = JobSpec.from_dict(data["job"])
    # Watchdog settings are ephemeral (they never enter the job
    # fingerprint), so the bundle carries them separately; re-arm them
    # or a genuine simulated wedge would hang the replay instead of
    # reproducing its classification.
    watchdog = data.get("watchdog") or {}
    spec = JobSpec(
        spec.params.replace(
            watchdog_cycles=int(watchdog.get("cycles", 0) or 0),
            watchdog_node_cycles=int(watchdog.get("node_cycles", 0)
                                     or 0)),
        spec.workload, spec.instructions, spec.warmup, spec.seed)
    store = None
    if args.from_checkpoint:
        if data.get("checkpoint"):
            store = ckpt.CheckpointStore(data["__dir__"])
        else:
            print("replay: bundle holds no checkpoint; replaying from a "
                  "cold start")
    try:
        result, info = ckpt.run_spec(spec, store=store, every=0)
    except WedgeError as exc:
        print(f"replay: wedge reproduced: {exc}")
        return 1
    except Exception as exc:  # noqa: BLE001 -- report, don't traceback
        print(f"replay: failure reproduced: "
              f"{type(exc).__name__}: {exc}")
        return 1
    if info.get("resumed_from"):
        print(f"replay: resumed from checkpoint at "
              f"{info['resumed_from']} retired instructions")
    print(f"replay: completed cleanly: {result.cycles} cycles, "
          f"IPC {result.ipc:.3f} -- the recorded failure was host-side")
    return 0


def cmd_profile(args, quick: bool) -> int:
    from repro.run.profile import format_report, profile_run
    workload = args.workload
    sizes_key = "dss" if workload == "dss" else "oltp"
    instr, warm = _sizes(sizes_key, quick)
    instructions = args.instructions if args.instructions is not None \
        else instr
    warmup = args.warmup if args.warmup is not None else warm
    report = profile_run(workload, instructions=instructions,
                         warmup=warmup, seed=args.seed, top=args.top,
                         compare_arena=args.compare_arena,
                         backend=args.backend,
                         compare_backends=args.compare_backends)
    if args.as_json:
        print(json.dumps(report, indent=2))
    else:
        print(format_report(report))
    arena = report.get("arena")
    if arena is not None and arena.get("materialized") \
            and not arena.get("identical"):
        return 1
    backends = report.get("backends")
    if backends is not None and not backends.get("identical"):
        return 1
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "worker":
        # Workers are configured by the coordinator's welcome frame
        # (fault plan, cache dir, checkpoint interval); configuring the
        # local runner here would grow a stray cache in the worker's
        # working directory.
        from repro.run.fabric.worker import serve_worker
        return serve_worker(args.connect, name=args.name,
                            quiet=args.quiet)
    quick = getattr(args, "quick", False)
    no_cache = getattr(args, "no_cache", False)
    raw_workers = getattr(args, "workers", None)
    workers = tuple(part.strip() for part in raw_workers.split(",")
                    if part.strip()) if raw_workers is not None else None
    run.configure(jobs=getattr(args, "jobs", None) or run.default_jobs(),
                  use_cache=not no_cache,
                  cache_dir=(None if no_cache
                             else getattr(args, "cache_dir", None)),
                  retries=getattr(args, "retries", None),
                  job_timeout=getattr(args, "job_timeout", None),
                  resume=getattr(args, "resume", None),
                  arenas="off" if getattr(args, "no_arenas", False)
                  else None,
                  trace_dir=getattr(args, "trace_dir", None),
                  checkpoint_every=getattr(args, "checkpoint_every",
                                           None),
                  dispatch=getattr(args, "dispatch", None),
                  workers=workers)

    if args.command == "lint":
        from repro.check.lint import RULES, explain_rule, run_lint
        if args.list_rules:
            for code, description in sorted(RULES.items()):
                print(f"{code}  {description}")
            return 0
        if args.explain:
            text = explain_rule(args.explain)
            print(text)
            return 0 if not text.startswith("unknown rule") else 1
        count = run_lint(args.paths or None,
                         fmt=args.format,
                         output=args.output,
                         baseline=args.baseline,
                         write_baseline=args.write_baseline)
        return 1 if count else 0
    if args.command == "check":
        from repro.check import run_check_suite
        ok = run_check_suite(verbose=True,
                             self_test=not args.skip_mutations,
                             durability=getattr(args, "durability",
                                                False))
        return 0 if ok else 1
    if args.command == "profile":
        return cmd_profile(args, quick)
    if args.command == "replay":
        return cmd_replay(args)
    if args.command == "sweep-status":
        return cmd_sweep_status()
    if args.command == "sweep":
        return cmd_sweep(args, quick)
    if args.command == "gc":
        return cmd_gc(args)
    if args.command == "audit-state":
        return cmd_audit_state(args)
    if args.command == "characterize":
        cmd_characterize(quick)
    elif args.command == "figure":
        cmd_figure(args.which, args.workload, quick)
    elif args.command == "report":
        cmd_report(quick)
    elif args.command == "validate":
        from repro.core.validation import run_all
        results = run_all(verbose=True)
        return 0 if all(r.passed for r in results) else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
