"""``python -m repro`` entry point."""

import os
import sys

from repro.cli import main

try:
    code = main()
except BrokenPipeError:
    # Downstream consumer (e.g. ``repro sweep-status | head``) closed
    # the pipe; exit quietly like any well-behaved CLI.  Point stdout at
    # devnull so the interpreter's shutdown flush does not raise again.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    code = 0
sys.exit(code)
