"""Serialization of system configurations to and from JSON.

Experiments are defined by :class:`~repro.params.SystemParams` trees;
saving them alongside results makes every run reproducible from its
artifacts (and lets configuration sweeps be described as data).

The format is a plain nested JSON object mirroring the dataclass tree,
with enums stored by name::

    {"n_nodes": 4,
     "processor": {"issue_width": 4, ...},
     "consistency": "SC",
     ...}

Unknown keys are rejected (catching typos in hand-written configs).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, TextIO, Union

from repro.params import (
    BranchPredictorParams,
    CacheParams,
    ConsistencyImpl,
    ConsistencyModel,
    MemoryLatencies,
    EPHEMERAL_FIELDS,
    ProcessorParams,
    SchedulerParams,
    SystemParams,
    TlbParams,
)

_ENUMS = {
    "consistency": ConsistencyModel,
    "consistency_impl": ConsistencyImpl,
}

# Fields that configure tooling rather than the simulated machine; they
# must not leak into saved configs or cache fingerprints (a sanitizer-on
# run produces bit-identical results to a sanitizer-off run, and the fast
# backend produces bit-identical results to the reference backend).
# Aliases the single registry in repro.params; the static contract
# auditor (R011) verifies the two cannot drift apart.
_EPHEMERAL = EPHEMERAL_FIELDS

_NESTED = {
    "processor": ProcessorParams,
    "bpred": BranchPredictorParams,
    "l1i": CacheParams,
    "l1d": CacheParams,
    "l2": CacheParams,
    "itlb": TlbParams,
    "dtlb": TlbParams,
    "latencies": MemoryLatencies,
    "scheduler": SchedulerParams,
}


def params_to_dict(params: SystemParams) -> Dict[str, Any]:
    """SystemParams -> plain JSON-serializable dict."""
    out: Dict[str, Any] = {}
    for field in dataclasses.fields(params):
        if field.name in _EPHEMERAL:
            continue
        value = getattr(params, field.name)
        if field.name in _ENUMS:
            out[field.name] = value.name
        elif dataclasses.is_dataclass(value):
            out[field.name] = dataclasses.asdict(value)
        else:
            out[field.name] = value
    return out


def params_from_dict(data: Dict[str, Any]) -> SystemParams:
    """Plain dict -> SystemParams (unknown keys raise ``ValueError``)."""
    known = {f.name for f in dataclasses.fields(SystemParams)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown SystemParams keys: {sorted(unknown)}")
    kwargs: Dict[str, Any] = {}
    for key, value in data.items():
        if key in _ENUMS:
            kwargs[key] = _ENUMS[key][value]
        elif key in _NESTED:
            cls = _NESTED[key]
            nested_known = {f.name for f in dataclasses.fields(cls)}
            nested_unknown = set(value) - nested_known
            if nested_unknown:
                raise ValueError(
                    f"unknown {cls.__name__} keys in {key!r}: "
                    f"{sorted(nested_unknown)}")
            kwargs[key] = cls(**value)
        else:
            kwargs[key] = value
    return SystemParams(**kwargs)


def save_params(params: SystemParams,
                target: Union[str, TextIO]) -> None:
    """Write a configuration to a path or open file."""
    text = json.dumps(params_to_dict(params), indent=2, sort_keys=True)
    if isinstance(target, str):
        with open(target, "w") as fh:
            fh.write(text + "\n")
    else:
        target.write(text + "\n")


def load_params(source: Union[str, TextIO]) -> SystemParams:
    """Read a configuration from a path or open file."""
    if isinstance(source, str):
        with open(source) as fh:
            data = json.load(fh)
    else:
        data = json.load(source)
    return params_from_dict(data)
