"""repro: reproduction of "Performance of Database Workloads on
Shared-Memory Systems with Out-of-Order Processors" (ASPLOS 1998).

A from-scratch, cycle-level CC-NUMA multiprocessor simulator plus
synthetic OLTP (TPC-B-like) and DSS (TPC-D-Q6-like) workload generators
that reproduce the paper's characterization and all of its experiments.

Quickstart::

    from repro import default_system, oltp_workload, run_simulation

    result = run_simulation(default_system(), oltp_workload())
    print(result.ipc, result.breakdown.summary_row())

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record of every table and figure.
"""

from repro.params import (
    ConsistencyImpl,
    ConsistencyModel,
    SystemParams,
    default_system,
    paper_system,
)
from repro.core.workloads import (
    Workload,
    dss_workload,
    oltp_workload,
    tpcc_workload,
)
from repro.core.experiment import SimulationResult, run_simulation
from repro.core.optimizations import migratory_hints, profile_migratory_pcs
from repro.system.machine import Machine

__version__ = "1.0.0"

__all__ = [
    "ConsistencyModel", "ConsistencyImpl", "SystemParams",
    "default_system", "paper_system",
    "Workload", "oltp_workload", "dss_workload", "tpcc_workload",
    "SimulationResult", "run_simulation",
    "profile_migratory_pcs", "migratory_hints",
    "Machine",
    "__version__",
]
